// Package slo is a multi-window burn-rate monitor over the serving
// tier's two user-facing objectives: request latency (fraction of
// requests faster than a threshold) and availability (fraction of
// requests that succeed). Burn rate is budget consumption speed —
// bad-event rate divided by the error budget (1 − target) — so burn 1.0
// spends exactly the budget over the SLO period and burn 14 torches it
// 14× too fast. An objective alerts only when BOTH a fast and a slow
// window exceed the threshold: the slow window proves the problem is
// real (not one hiccup), the fast window proves it is still happening
// (the alert clears quickly once the cause is fixed). This is the
// standard multi-window multi-burn-rate construction from the SRE
// workbook, scaled down to the windows a load test can exercise.
//
// A nil *Monitor is a valid disabled monitor: every method no-ops, so
// call sites need no branching — the same discipline as
// telemetry.Tracer.
package slo

import (
	"sync"
	"time"
)

// Options configures a Monitor. Zero fields take defaults.
type Options struct {
	// LatencyThreshold is the per-request latency above which a request
	// counts against the latency objective. Default 250ms.
	LatencyThreshold time.Duration
	// LatencyTarget is the fraction of requests that must be faster
	// than the threshold. Default 0.99.
	LatencyTarget float64
	// ErrorTarget is the fraction of requests that must succeed.
	// Default 0.999.
	ErrorTarget float64
	// FastWindow and SlowWindow are the two burn-rate windows. Defaults
	// 10s and 60s — scaled to load-test horizons; production deployments
	// pass 5m/1h.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold is the burn rate both windows must exceed to alert.
	// Default 10 (spending budget an order of magnitude too fast).
	BurnThreshold float64
	// Now injects the clock for tests. Default time.Now.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.LatencyThreshold <= 0 {
		o.LatencyThreshold = 250 * time.Millisecond
	}
	if o.LatencyTarget <= 0 || o.LatencyTarget >= 1 {
		o.LatencyTarget = 0.99
	}
	if o.ErrorTarget <= 0 || o.ErrorTarget >= 1 {
		o.ErrorTarget = 0.999
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 10 * time.Second
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = 60 * time.Second
		if o.SlowWindow < o.FastWindow {
			o.SlowWindow = 6 * o.FastWindow
		}
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 10
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// bucket accumulates one second of observations.
type bucket struct {
	sec   int64
	total int64
	slow  int64
	errs  int64
}

// Monitor ingests per-request outcomes and reports burn rates. It keeps
// a ring of one-second buckets covering the slow window, so memory is
// O(window seconds) and an idle monitor decays to zero burn.
type Monitor struct {
	opts Options

	mu    sync.Mutex
	ring  []bucket
	total int64 // lifetime requests, for the report
}

// New builds a monitor; nil Options semantics come from withDefaults.
func New(opts Options) *Monitor {
	opts = opts.withDefaults()
	n := int(opts.SlowWindow/time.Second) + 1
	if n < 2 {
		n = 2
	}
	return &Monitor{opts: opts, ring: make([]bucket, n)}
}

// Enabled reports whether observations are being recorded.
func (m *Monitor) Enabled() bool { return m != nil }

// Observe books one completed request: its end-to-end latency and
// whether it failed. Failed requests also count as slow — a 500 in 1ms
// is not a latency win.
func (m *Monitor) Observe(latency time.Duration, failed bool) {
	if m == nil {
		return
	}
	sec := m.opts.Now().Unix()
	slow := failed || latency > m.opts.LatencyThreshold
	m.mu.Lock()
	b := &m.ring[sec%int64(len(m.ring))]
	if b.sec != sec {
		*b = bucket{sec: sec}
	}
	b.total++
	if slow {
		b.slow++
	}
	if failed {
		b.errs++
	}
	m.total++
	m.mu.Unlock()
}

// ObserveBatch books one completed batch-class request — a stress-grid
// revaluation, a bulk job — that counts toward the availability
// objective but is exempt from the interactive latency threshold: a
// 1000-scenario grid legitimately outlives a 250ms budget sized for
// single-chain pricing, and must not read as a burn. A failure still
// counts against both objectives.
func (m *Monitor) ObserveBatch(failed bool) {
	m.Observe(0, failed)
}

// windowSums totals the buckets inside the last d before now.
func (m *Monitor) windowSums(nowSec int64, d time.Duration) (total, slow, errs int64) {
	cutoff := nowSec - int64(d/time.Second)
	for _, b := range m.ring {
		if b.sec > cutoff && b.sec <= nowSec {
			total += b.total
			slow += b.slow
			errs += b.errs
		}
	}
	return total, slow, errs
}

// Objective is one SLO's burn-rate state at report time.
type Objective struct {
	// Name is "latency" or "availability".
	Name string `json:"name"`
	// Target is the objective (fraction of good requests).
	Target float64 `json:"target"`
	// FastBurn and SlowBurn are budget-consumption speeds over the two
	// windows; 1.0 spends exactly the budget.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Burning is true when both windows exceed the burn threshold.
	Burning bool `json:"burning"`
}

// Report is the full monitor state, JSON-shaped for /debug/slo.
type Report struct {
	Healthy bool `json:"healthy"`
	// BurnThreshold is the alert threshold both windows must cross.
	BurnThreshold float64 `json:"burn_threshold"`
	// FastWindowSec and SlowWindowSec name the windows.
	FastWindowSec float64 `json:"fast_window_sec"`
	SlowWindowSec float64 `json:"slow_window_sec"`
	// LatencyThresholdSec is the slow-request cutoff.
	LatencyThresholdSec float64 `json:"latency_threshold_sec"`
	// Requests is the lifetime observation count.
	Requests   int64       `json:"requests"`
	Objectives []Objective `json:"objectives"`
}

// burn converts a bad-event count over a window into a burn rate
// against the objective's budget. An empty window burns nothing.
func burn(bad, total int64, target float64) float64 {
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - target)
}

// Report snapshots both objectives' burn state. A nil monitor reports
// healthy with no objectives — the disabled state is indistinguishable
// from a perfect one, which is what nil-safety means here.
func (m *Monitor) Report() Report {
	if m == nil {
		return Report{Healthy: true}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	nowSec := m.opts.Now().Unix()
	fTotal, fSlow, fErrs := m.windowSums(nowSec, m.opts.FastWindow)
	sTotal, sSlow, sErrs := m.windowSums(nowSec, m.opts.SlowWindow)

	latency := Objective{
		Name:     "latency",
		Target:   m.opts.LatencyTarget,
		FastBurn: burn(fSlow, fTotal, m.opts.LatencyTarget),
		SlowBurn: burn(sSlow, sTotal, m.opts.LatencyTarget),
	}
	latency.Burning = latency.FastBurn > m.opts.BurnThreshold && latency.SlowBurn > m.opts.BurnThreshold

	avail := Objective{
		Name:     "availability",
		Target:   m.opts.ErrorTarget,
		FastBurn: burn(fErrs, fTotal, m.opts.ErrorTarget),
		SlowBurn: burn(sErrs, sTotal, m.opts.ErrorTarget),
	}
	avail.Burning = avail.FastBurn > m.opts.BurnThreshold && avail.SlowBurn > m.opts.BurnThreshold

	return Report{
		Healthy:             !latency.Burning && !avail.Burning,
		BurnThreshold:       m.opts.BurnThreshold,
		FastWindowSec:       m.opts.FastWindow.Seconds(),
		SlowWindowSec:       m.opts.SlowWindow.Seconds(),
		LatencyThresholdSec: m.opts.LatencyThreshold.Seconds(),
		Requests:            m.total,
		Objectives:          []Objective{latency, avail},
	}
}
