// Package benchmark implements the accelerator-comparison methodology of
// de Schryver et al. ([4] in the paper), which the related-work section
// adopts: an option pricing accelerator is a (problem, mathematical
// model, solution) triple, and solutions are compared not only on
// acceleration but on accuracy and energy per option (J/option).
// Qualification against a requirement set reproduces the paper's own
// use-case verdict — which solutions actually satisfy "2000 options/s,
// high accuracy, about 10 W" simultaneously.
package benchmark

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Solution is one accelerator implementation measured under the
// methodology.
type Solution struct {
	Name     string
	Platform string
	Problem  string // e.g. "American put pricing"
	Model    string // e.g. "CRR binomial, N=1024"

	OptionsPerSec float64
	PowerWatts    float64
	RMSE          float64
}

// JoulesPerOption is the energy criterion of [4].
func (s Solution) JoulesPerOption() float64 {
	if s.OptionsPerSec <= 0 {
		return math.Inf(1)
	}
	return s.PowerWatts / s.OptionsPerSec
}

// Requirement is a set of constraints a deployment imposes, like the
// paper's trader workstation scenario.
type Requirement struct {
	MinOptionsPerSec float64
	MaxRMSE          float64
	MaxWatts         float64
}

// Verdict records one solution's qualification outcome.
type Verdict struct {
	Solution Solution
	Passed   bool
	Failures []string
}

// Qualify checks every solution against the requirement and returns the
// verdicts in the input order.
func Qualify(sols []Solution, req Requirement) []Verdict {
	out := make([]Verdict, 0, len(sols))
	for _, s := range sols {
		var fails []string
		if req.MinOptionsPerSec > 0 && s.OptionsPerSec < req.MinOptionsPerSec {
			fails = append(fails, fmt.Sprintf("throughput %.0f < %.0f options/s", s.OptionsPerSec, req.MinOptionsPerSec))
		}
		if req.MaxRMSE > 0 && s.RMSE > req.MaxRMSE {
			fails = append(fails, fmt.Sprintf("RMSE %.1e > %.1e", s.RMSE, req.MaxRMSE))
		}
		if req.MaxWatts > 0 && s.PowerWatts > req.MaxWatts {
			fails = append(fails, fmt.Sprintf("power %.1f W > %.1f W", s.PowerWatts, req.MaxWatts))
		}
		out = append(out, Verdict{Solution: s, Passed: len(fails) == 0, Failures: fails})
	}
	return out
}

// RankByEnergy sorts solutions by J/option ascending — the discrimination
// criterion [4] adds over raw acceleration factors.
func RankByEnergy(sols []Solution) []Solution {
	out := append([]Solution(nil), sols...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].JoulesPerOption() < out[j].JoulesPerOption()
	})
	return out
}

// FormatVerdicts renders the qualification matrix.
func FormatVerdicts(vs []Verdict, req Requirement) string {
	var b strings.Builder
	fmt.Fprintf(&b, "requirement: >= %.0f options/s, RMSE <= %.0e, <= %.1f W\n",
		req.MinOptionsPerSec, req.MaxRMSE, req.MaxWatts)
	for _, v := range vs {
		status := "PASS"
		if !v.Passed {
			status = "fail: " + strings.Join(v.Failures, "; ")
		}
		fmt.Fprintf(&b, "  %-28s %-22s %8.3g mJ/option  %s\n",
			v.Solution.Name, v.Solution.Platform, 1e3*v.Solution.JoulesPerOption(), status)
	}
	return b.String()
}
