package benchmark

import (
	"math"
	"strings"
	"testing"
)

func sample() []Solution {
	return []Solution{
		{Name: "IV.B FPGA", Platform: "DE4", OptionsPerSec: 2552, PowerWatts: 17.6, RMSE: 5.6e-4},
		{Name: "IV.B GPU", Platform: "GTX660", OptionsPerSec: 8889, PowerWatts: 140, RMSE: 0},
		{Name: "reference", Platform: "Xeon", OptionsPerSec: 222, PowerWatts: 120, RMSE: 0},
	}
}

func TestJoulesPerOption(t *testing.T) {
	s := Solution{OptionsPerSec: 2000, PowerWatts: 20}
	if got := s.JoulesPerOption(); got != 0.01 {
		t.Errorf("J/option = %v, want 0.01", got)
	}
	dead := Solution{OptionsPerSec: 0, PowerWatts: 10}
	if !math.IsInf(dead.JoulesPerOption(), 1) {
		t.Error("zero throughput should give +Inf J/option")
	}
}

func TestRankByEnergy(t *testing.T) {
	ranked := RankByEnergy(sample())
	if ranked[0].Name != "IV.B FPGA" {
		t.Errorf("energy winner = %s, want IV.B FPGA", ranked[0].Name)
	}
	if ranked[len(ranked)-1].Name != "reference" {
		t.Errorf("energy loser = %s, want reference", ranked[len(ranked)-1].Name)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].JoulesPerOption() < ranked[i-1].JoulesPerOption() {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestQualifyPaperUseCase(t *testing.T) {
	// The paper's constraints: 2000 options/s, high accuracy, ~10 W. No
	// published solution satisfies all three — the paper's own verdict.
	req := Requirement{MinOptionsPerSec: 2000, MaxRMSE: 1e-6, MaxWatts: 10}
	vs := Qualify(sample(), req)
	for _, v := range vs {
		if v.Passed {
			t.Errorf("%s should not qualify under the strict use case", v.Solution.Name)
		}
	}
	// Specific failure reasons.
	if !strings.Contains(strings.Join(vs[0].Failures, ";"), "RMSE") {
		t.Errorf("FPGA should fail on RMSE: %v", vs[0].Failures)
	}
	if !strings.Contains(strings.Join(vs[1].Failures, ";"), "power") {
		t.Errorf("GPU should fail on power: %v", vs[1].Failures)
	}
	if !strings.Contains(strings.Join(vs[2].Failures, ";"), "throughput") {
		t.Errorf("reference should fail on throughput: %v", vs[2].Failures)
	}
}

func TestQualifyRelaxedBudget(t *testing.T) {
	// With the fixed Power operator and a 20 W budget, the FPGA solution
	// qualifies — the outcome the paper projects for the 13.0 SP1
	// compiler.
	sols := sample()
	sols[0].RMSE = 0
	req := Requirement{MinOptionsPerSec: 2000, MaxRMSE: 1e-6, MaxWatts: 20}
	vs := Qualify(sols, req)
	if !vs[0].Passed {
		t.Errorf("fixed-pow FPGA should qualify at 20 W: %v", vs[0].Failures)
	}
	if vs[1].Passed {
		t.Error("GPU should still fail on power")
	}
}

func TestQualifyZeroRequirementsPassAll(t *testing.T) {
	vs := Qualify(sample(), Requirement{})
	for _, v := range vs {
		if !v.Passed {
			t.Errorf("%s should pass an empty requirement", v.Solution.Name)
		}
	}
}

func TestFormatVerdicts(t *testing.T) {
	req := Requirement{MinOptionsPerSec: 2000, MaxRMSE: 1e-6, MaxWatts: 10}
	s := FormatVerdicts(Qualify(sample(), req), req)
	for _, want := range []string{"requirement:", "IV.B FPGA", "mJ/option", "fail:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}
