package opencl

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// DefaultEventCapacity bounds the per-queue event ring. A long-running
// server enqueues commands forever; the ring keeps the recent window
// for inspection while Counters stay exact over the queue's whole life.
const DefaultEventCapacity = 4096

// Event records what one enqueued command did: the meters the
// performance models consume plus the four profiling timestamps of
// clGetEventProfilingInfo. This runtime executes commands synchronously
// at enqueue, so Queued == Submit and the queued→start gap is the
// host-side validation cost; the modelled device-clock timeline is
// derived separately, from the perf estimates (internal/accel).
type Event struct {
	Command string
	Stats   Counters
	// Queued is CL_PROFILING_COMMAND_QUEUED: the host enqueued the
	// command. Submit is CL_PROFILING_COMMAND_SUBMIT (same instant on
	// this synchronous runtime). Start and End bracket execution.
	Queued, Submit, Start, End time.Time
}

// Duration is the command's host execution time (start to end).
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// CommandQueue executes commands against one device, in order (the paper
// uses in-order queues; the host overlaps work by splitting commands
// across queue batches, which internal/kernels reproduces at the host
// driver level).
type CommandQueue struct {
	ctx *Context

	mu      sync.Mutex
	total   Counters
	events  []Event // bounded ring, evCap slots
	evNext  int
	evFull  bool
	evDrop  int64
	evCap   int
	hook    func(Event)
	hazards bool
}

// NewQueue creates a command queue on the context.
func (c *Context) NewQueue() *CommandQueue {
	return &CommandQueue{ctx: c, evCap: DefaultEventCapacity}
}

// Counters returns the accumulated meters of all commands executed so
// far.
func (q *CommandQueue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Events returns the retained per-command events, oldest first. At most
// the ring capacity of recent events is kept; DroppedEvents counts the
// rest.
func (q *CommandQueue) Events() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.evFull {
		out := make([]Event, q.evNext)
		copy(out, q.events[:q.evNext])
		return out
	}
	out := make([]Event, 0, q.evCap)
	out = append(out, q.events[q.evNext:]...)
	out = append(out, q.events[:q.evNext]...)
	return out
}

// DroppedEvents reports how many events were evicted from the ring to
// make room for newer ones.
func (q *CommandQueue) DroppedEvents() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.evDrop
}

// SetEventCapacity resizes the event ring (minimum 1), discarding the
// retained events.
func (q *CommandQueue) SetEventCapacity(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	q.evCap = n
	q.events = nil
	q.evNext = 0
	q.evFull = false
	q.mu.Unlock()
}

// SetEventHook installs fn to be called with every recorded event,
// after the command completes and outside the queue lock — the
// profiling-callback analogue the telemetry layer subscribes to. Pass
// nil to remove.
func (q *CommandQueue) SetEventHook(fn func(Event)) {
	q.mu.Lock()
	q.hook = fn
	q.mu.Unlock()
}

// ResetCounters clears the accumulated meters (the events are kept).
func (q *CommandQueue) ResetCounters() {
	q.mu.Lock()
	q.total = Counters{}
	q.mu.Unlock()
}

func (q *CommandQueue) record(cmd string, st Counters, queued, start time.Time) Event {
	ev := Event{Command: cmd, Stats: st, Queued: queued, Submit: queued, Start: start, End: time.Now()}
	q.mu.Lock()
	q.total.Add(st)
	if q.events == nil {
		q.events = make([]Event, q.evCap)
	}
	if q.evFull {
		q.evDrop++
	}
	q.events[q.evNext] = ev
	q.evNext++
	if q.evNext == q.evCap {
		q.evNext = 0
		q.evFull = true
	}
	hook := q.hook
	q.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
	return ev
}

// EnqueueWriteBuffer copies host data into a buffer
// (clEnqueueWriteBuffer). The length of data must not exceed the buffer.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, offset int, data []float64) (Event, error) {
	queued := time.Now()
	if offset < 0 || offset+len(data) > b.Len() {
		return Event{}, fmt.Errorf("opencl: write to %q out of range: [%d, %d) of %d",
			b.name, offset, offset+len(data), b.Len())
	}
	start := time.Now()
	copy(b.data[offset:], data)
	st := Counters{HostWrites: int64(len(data)) * b.elemBytes, HostTransfers: 1}
	return q.record("write "+b.name, st, queued, start), nil
}

// EnqueueReadBuffer copies a buffer range back to the host
// (clEnqueueReadBuffer).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, offset int, out []float64) (Event, error) {
	queued := time.Now()
	if offset < 0 || offset+len(out) > b.Len() {
		return Event{}, fmt.Errorf("opencl: read from %q out of range: [%d, %d) of %d",
			b.name, offset, offset+len(out), b.Len())
	}
	start := time.Now()
	copy(out, b.data[offset:offset+len(out)])
	st := Counters{HostReads: int64(len(out)) * b.elemBytes, HostTransfers: 1}
	return q.record("read "+b.name, st, queued, start), nil
}

// EnqueueNDRange executes a 1-D NDRange of the kernel
// (clEnqueueNDRangeKernel). globalSize must be a positive multiple of
// localSize, the OpenCL 1.x rule the paper's work-item indexing
// discussion revolves around. Work-groups execute concurrently; inside a
// group, execution is sequential unless the kernel declares barriers, in
// which case every work-item runs on its own goroutine and Barrier
// rendezvouses them.
func (q *CommandQueue) EnqueueNDRange(k *Kernel, globalSize, localSize int) (Event, error) {
	queued := time.Now()
	if globalSize <= 0 || localSize <= 0 {
		return Event{}, fmt.Errorf("opencl: kernel %q: sizes must be positive (global=%d local=%d)",
			k.Name, globalSize, localSize)
	}
	if globalSize%localSize != 0 {
		return Event{}, fmt.Errorf("opencl: kernel %q: global size %d not a multiple of local size %d",
			k.Name, globalSize, localSize)
	}
	if max := q.ctx.device.Info.MaxWorkGroupSize; max > 0 && localSize > max {
		return Event{}, fmt.Errorf("opencl: kernel %q: local size %d exceeds device max %d",
			k.Name, localSize, max)
	}

	groups := globalSize / localSize
	stats := make([]Counters, groups)
	errs := make([]error, groups)

	var tracker *hazardTracker
	if q.hazardsEnabled() {
		tracker = newHazardTracker()
	}

	start := time.Now()
	workers := runtime.GOMAXPROCS(0)
	if workers > groups {
		workers = groups
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range next {
				stats[g], errs[g] = q.runGroup(k, g, localSize, globalSize, tracker)
			}
		}()
	}
	for g := 0; g < groups; g++ {
		next <- g
	}
	close(next)
	wg.Wait()

	var st Counters
	for g := range stats {
		if errs[g] != nil {
			return Event{}, fmt.Errorf("opencl: kernel %q group %d: %w", k.Name, g, errs[g])
		}
		st.Add(stats[g])
	}
	if tracker != nil {
		if conflicts := tracker.report(); len(conflicts) > 0 {
			return Event{}, fmt.Errorf("opencl: kernel %q has %d memory hazards; first: %s",
				k.Name, len(conflicts), conflicts[0])
		}
	}
	st.Kernels = 1
	st.KernelLaunches = 1
	st.WorkGroups = int64(groups)
	st.WorkItems = int64(globalSize)
	return q.record("ndrange "+k.Name, st, queued, start), nil
}

// runGroup executes one work-group and returns its merged meters.
func (q *CommandQueue) runGroup(k *Kernel, groupID, localSize, globalSize int, tracker *hazardTracker) (st Counters, err error) {
	g := &groupCtx{
		kernel:    k,
		groupID:   groupID,
		localSize: localSize,
		glSize:    globalSize,
		locals:    make(map[int][]float64),
		localElem: make(map[int]int64),
		hazard:    tracker,
	}
	var localBytes int64
	for i, l := range k.localArgs() {
		if l.N <= 0 || (l.ElemBytes != 4 && l.ElemBytes != 8) {
			return st, fmt.Errorf("local arg %d invalid (n=%d elem=%d)", i, l.N, l.ElemBytes)
		}
		g.locals[i] = make([]float64, l.N)
		g.localElem[i] = int64(l.ElemBytes)
		localBytes += int64(l.N) * int64(l.ElemBytes)
	}
	if max := q.ctx.device.Info.LocalMemBytes; max > 0 && localBytes > max {
		return st, fmt.Errorf("local memory %dB exceeds device limit %dB", localBytes, max)
	}

	if !k.UsesBarriers {
		// Sequential schedule; a single WorkItem value is reused.
		wi := &WorkItem{g: g}
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("work-item %d: %v", wi.globalID, r)
			}
		}()
		for l := 0; l < localSize; l++ {
			wi.localID = l
			wi.globalID = groupID*localSize + l
			k.fn(wi)
		}
		return wi.stats, nil
	}

	// Concurrent schedule with a cyclic barrier. A panicking work-item
	// breaks the barrier so its siblings unwind instead of deadlocking.
	g.bar = newBarrier(localSize)
	items := make([]*WorkItem, localSize)
	panics := make([]any, localSize)
	var wg sync.WaitGroup
	for l := 0; l < localSize; l++ {
		items[l] = &WorkItem{g: g, localID: l, globalID: groupID*localSize + l}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[idx] = r
					g.bar.breakBarrier()
				}
			}()
			k.fn(items[idx])
		}(l)
	}
	wg.Wait()
	// Report the root cause, not the induced barrier breakages.
	for l, p := range panics {
		if p != nil && p != errBarrierBroken {
			return st, fmt.Errorf("work-item %d: %v", groupID*localSize+l, p)
		}
	}
	for l, p := range panics {
		if p != nil {
			return st, fmt.Errorf("work-item %d: %v", groupID*localSize+l, p)
		}
	}
	for _, wi := range items {
		st.Add(wi.stats)
	}
	return st, nil
}

// Finish blocks until all enqueued commands complete (clFinish). This
// runtime executes commands synchronously at enqueue time, so Finish is
// a semantic no-op kept for API fidelity with host code written against
// real OpenCL; drivers call it at batch boundaries exactly where the
// paper's host program does.
func (q *CommandQueue) Finish() {}
