package opencl

import (
	"fmt"
	"runtime"
	"sync"
)

// Event records what one enqueued command did, the analogue of OpenCL
// profiling events — except that instead of timestamps it carries the
// meters the performance models consume.
type Event struct {
	Command string
	Stats   Counters
}

// CommandQueue executes commands against one device, in order (the paper
// uses in-order queues; the host overlaps work by splitting commands
// across queue batches, which internal/kernels reproduces at the host
// driver level).
type CommandQueue struct {
	ctx *Context

	mu      sync.Mutex
	total   Counters
	events  []Event
	hazards bool
}

// NewQueue creates a command queue on the context.
func (c *Context) NewQueue() *CommandQueue {
	return &CommandQueue{ctx: c}
}

// Counters returns the accumulated meters of all commands executed so
// far.
func (q *CommandQueue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Events returns the recorded per-command events.
func (q *CommandQueue) Events() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Event, len(q.events))
	copy(out, q.events)
	return out
}

// ResetCounters clears the accumulated meters (the events are kept).
func (q *CommandQueue) ResetCounters() {
	q.mu.Lock()
	q.total = Counters{}
	q.mu.Unlock()
}

func (q *CommandQueue) record(cmd string, st Counters) Event {
	ev := Event{Command: cmd, Stats: st}
	q.mu.Lock()
	q.total.Add(st)
	q.events = append(q.events, ev)
	q.mu.Unlock()
	return ev
}

// EnqueueWriteBuffer copies host data into a buffer
// (clEnqueueWriteBuffer). The length of data must not exceed the buffer.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, offset int, data []float64) (Event, error) {
	if offset < 0 || offset+len(data) > b.Len() {
		return Event{}, fmt.Errorf("opencl: write to %q out of range: [%d, %d) of %d",
			b.name, offset, offset+len(data), b.Len())
	}
	copy(b.data[offset:], data)
	st := Counters{HostWrites: int64(len(data)) * b.elemBytes, HostTransfers: 1}
	return q.record("write "+b.name, st), nil
}

// EnqueueReadBuffer copies a buffer range back to the host
// (clEnqueueReadBuffer).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, offset int, out []float64) (Event, error) {
	if offset < 0 || offset+len(out) > b.Len() {
		return Event{}, fmt.Errorf("opencl: read from %q out of range: [%d, %d) of %d",
			b.name, offset, offset+len(out), b.Len())
	}
	copy(out, b.data[offset:offset+len(out)])
	st := Counters{HostReads: int64(len(out)) * b.elemBytes, HostTransfers: 1}
	return q.record("read "+b.name, st), nil
}

// EnqueueNDRange executes a 1-D NDRange of the kernel
// (clEnqueueNDRangeKernel). globalSize must be a positive multiple of
// localSize, the OpenCL 1.x rule the paper's work-item indexing
// discussion revolves around. Work-groups execute concurrently; inside a
// group, execution is sequential unless the kernel declares barriers, in
// which case every work-item runs on its own goroutine and Barrier
// rendezvouses them.
func (q *CommandQueue) EnqueueNDRange(k *Kernel, globalSize, localSize int) (Event, error) {
	if globalSize <= 0 || localSize <= 0 {
		return Event{}, fmt.Errorf("opencl: kernel %q: sizes must be positive (global=%d local=%d)",
			k.Name, globalSize, localSize)
	}
	if globalSize%localSize != 0 {
		return Event{}, fmt.Errorf("opencl: kernel %q: global size %d not a multiple of local size %d",
			k.Name, globalSize, localSize)
	}
	if max := q.ctx.device.Info.MaxWorkGroupSize; max > 0 && localSize > max {
		return Event{}, fmt.Errorf("opencl: kernel %q: local size %d exceeds device max %d",
			k.Name, localSize, max)
	}

	groups := globalSize / localSize
	stats := make([]Counters, groups)
	errs := make([]error, groups)

	var tracker *hazardTracker
	if q.hazardsEnabled() {
		tracker = newHazardTracker()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > groups {
		workers = groups
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range next {
				stats[g], errs[g] = q.runGroup(k, g, localSize, globalSize, tracker)
			}
		}()
	}
	for g := 0; g < groups; g++ {
		next <- g
	}
	close(next)
	wg.Wait()

	var st Counters
	for g := range stats {
		if errs[g] != nil {
			return Event{}, fmt.Errorf("opencl: kernel %q group %d: %w", k.Name, g, errs[g])
		}
		st.Add(stats[g])
	}
	if tracker != nil {
		if conflicts := tracker.report(); len(conflicts) > 0 {
			return Event{}, fmt.Errorf("opencl: kernel %q has %d memory hazards; first: %s",
				k.Name, len(conflicts), conflicts[0])
		}
	}
	st.Kernels = 1
	st.KernelLaunches = 1
	st.WorkGroups = int64(groups)
	st.WorkItems = int64(globalSize)
	return q.record("ndrange "+k.Name, st), nil
}

// runGroup executes one work-group and returns its merged meters.
func (q *CommandQueue) runGroup(k *Kernel, groupID, localSize, globalSize int, tracker *hazardTracker) (st Counters, err error) {
	g := &groupCtx{
		kernel:    k,
		groupID:   groupID,
		localSize: localSize,
		glSize:    globalSize,
		locals:    make(map[int][]float64),
		localElem: make(map[int]int64),
		hazard:    tracker,
	}
	var localBytes int64
	for i, l := range k.localArgs() {
		if l.N <= 0 || (l.ElemBytes != 4 && l.ElemBytes != 8) {
			return st, fmt.Errorf("local arg %d invalid (n=%d elem=%d)", i, l.N, l.ElemBytes)
		}
		g.locals[i] = make([]float64, l.N)
		g.localElem[i] = int64(l.ElemBytes)
		localBytes += int64(l.N) * int64(l.ElemBytes)
	}
	if max := q.ctx.device.Info.LocalMemBytes; max > 0 && localBytes > max {
		return st, fmt.Errorf("local memory %dB exceeds device limit %dB", localBytes, max)
	}

	if !k.UsesBarriers {
		// Sequential schedule; a single WorkItem value is reused.
		wi := &WorkItem{g: g}
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("work-item %d: %v", wi.globalID, r)
			}
		}()
		for l := 0; l < localSize; l++ {
			wi.localID = l
			wi.globalID = groupID*localSize + l
			k.fn(wi)
		}
		return wi.stats, nil
	}

	// Concurrent schedule with a cyclic barrier. A panicking work-item
	// breaks the barrier so its siblings unwind instead of deadlocking.
	g.bar = newBarrier(localSize)
	items := make([]*WorkItem, localSize)
	panics := make([]any, localSize)
	var wg sync.WaitGroup
	for l := 0; l < localSize; l++ {
		items[l] = &WorkItem{g: g, localID: l, globalID: groupID*localSize + l}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[idx] = r
					g.bar.breakBarrier()
				}
			}()
			k.fn(items[idx])
		}(l)
	}
	wg.Wait()
	// Report the root cause, not the induced barrier breakages.
	for l, p := range panics {
		if p != nil && p != errBarrierBroken {
			return st, fmt.Errorf("work-item %d: %v", groupID*localSize+l, p)
		}
	}
	for l, p := range panics {
		if p != nil {
			return st, fmt.Errorf("work-item %d: %v", groupID*localSize+l, p)
		}
	}
	for _, wi := range items {
		st.Add(wi.stats)
	}
	return st, nil
}

// Finish blocks until all enqueued commands complete (clFinish). This
// runtime executes commands synchronously at enqueue time, so Finish is
// a semantic no-op kept for API fidelity with host code written against
// real OpenCL; drivers call it at batch boundaries exactly where the
// paper's host program does.
func (q *CommandQueue) Finish() {}
