package opencl

import "fmt"

// Buffer is a global-memory object. Values are held as float64 words; the
// element size only affects the byte accounting, so a single-precision
// kernel build declares 4-byte elements and the traffic meters shrink
// accordingly (exactly the effect single precision has on a real board's
// bandwidth needs).
type Buffer struct {
	ctx       *Context
	name      string
	data      []float64
	elemBytes int64
	released  bool
}

// CreateBuffer allocates a global buffer of n elements on the context's
// device. elemBytes must be 4 or 8.
func (c *Context) CreateBuffer(name string, n int, elemBytes int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("opencl: buffer %q needs a positive size, got %d", name, n)
	}
	if elemBytes != 4 && elemBytes != 8 {
		return nil, fmt.Errorf("opencl: buffer %q element size must be 4 or 8 bytes, got %d", name, elemBytes)
	}
	bytes := int64(n) * int64(elemBytes)
	if err := c.device.reserve(bytes); err != nil {
		return nil, err
	}
	return &Buffer{
		ctx:       c,
		name:      name,
		data:      make([]float64, n),
		elemBytes: int64(elemBytes),
	}, nil
}

// Release returns the buffer's memory to the device. Releasing twice is
// an error, as it is in OpenCL.
func (b *Buffer) Release() error {
	if b.released {
		return fmt.Errorf("opencl: buffer %q released twice", b.name)
	}
	b.released = true
	b.ctx.device.release(b.Bytes())
	return nil
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.data) }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(len(b.data)) * b.elemBytes }

// ElemBytes returns the element size used for traffic accounting.
func (b *Buffer) ElemBytes() int64 { return b.elemBytes }

// Name returns the diagnostic name given at creation.
func (b *Buffer) Name() string { return b.name }

// at reads an element with bounds checking; kernels reach it through
// WorkItem.Load so the access is metered.
func (b *Buffer) at(i int) float64 {
	if i < 0 || i >= len(b.data) {
		panic(fmt.Errorf("opencl: buffer %q read out of range: %d of %d", b.name, i, len(b.data)))
	}
	return b.data[i]
}

// set writes an element with bounds checking; kernels reach it through
// WorkItem.Store.
func (b *Buffer) set(i int, v float64) {
	if i < 0 || i >= len(b.data) {
		panic(fmt.Errorf("opencl: buffer %q write out of range: %d of %d", b.name, i, len(b.data)))
	}
	b.data[i] = v
}
