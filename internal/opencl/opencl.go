// Package opencl is a functional simulator of the OpenCL execution model
// the paper programs against (§III-C): a host enqueues kernels and buffer
// transfers on command queues; a device executes NDRanges of work-items
// organised into work-groups; memory is split into global (host-visible),
// local (per work-group, shared, barrier-synchronised) and private (per
// work-item) levels.
//
// The simulator executes kernels for real — the option prices produced by
// the kernels in internal/kernels are computed through this runtime — and
// meters every interaction (bytes moved per memory level, flops, barriers,
// work-items) so the performance models in internal/perf can translate a
// run into device time and energy. It performs no timing itself.
package opencl

import (
	"fmt"
	"sync"
)

// DeviceType classifies a device the way OpenCL device queries do.
type DeviceType int

const (
	// CPU devices execute kernels on the host processor.
	CPU DeviceType = iota
	// GPU devices are discrete graphics processors.
	GPU
	// Accelerator covers FPGA boards exposed through vendor OpenCL SDKs.
	Accelerator
)

// String names the device type.
func (t DeviceType) String() string {
	switch t {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case Accelerator:
		return "accelerator"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(t))
	}
}

// DeviceInfo is the static description of a device, the analogue of
// clGetDeviceInfo.
type DeviceInfo struct {
	Name             string
	Vendor           string
	Type             DeviceType
	ComputeUnits     int
	GlobalMemBytes   int64
	LocalMemBytes    int64
	MaxWorkGroupSize int
}

// Platform groups the devices of one vendor, the analogue of
// clGetPlatformIDs.
type Platform struct {
	Name    string
	Vendor  string
	Version string
	devices []*Device
}

// NewPlatform creates a platform exposing the given devices.
func NewPlatform(name, vendor, version string, infos ...DeviceInfo) *Platform {
	p := &Platform{Name: name, Vendor: vendor, Version: version}
	for _, info := range infos {
		p.devices = append(p.devices, &Device{Info: info})
	}
	return p
}

// Devices returns the platform's devices, optionally filtered by type.
// Passing a negative filter returns all devices.
func (p *Platform) Devices(filter DeviceType) []*Device {
	if filter < 0 {
		out := make([]*Device, len(p.devices))
		copy(out, p.devices)
		return out
	}
	var out []*Device
	for _, d := range p.devices {
		if d.Info.Type == filter {
			out = append(out, d)
		}
	}
	return out
}

// Device is a simulated OpenCL device.
type Device struct {
	Info DeviceInfo

	mu        sync.Mutex
	allocated int64
}

// reserve accounts a global-memory allocation against the device limit.
func (d *Device) reserve(bytes int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Info.GlobalMemBytes > 0 && d.allocated+bytes > d.Info.GlobalMemBytes {
		return fmt.Errorf("opencl: device %q out of global memory: %d + %d > %d",
			d.Info.Name, d.allocated, bytes, d.Info.GlobalMemBytes)
	}
	d.allocated += bytes
	return nil
}

// release returns a global-memory allocation to the device.
func (d *Device) release(bytes int64) {
	d.mu.Lock()
	d.allocated -= bytes
	d.mu.Unlock()
}

// AllocatedBytes reports the global memory currently reserved on the
// device.
func (d *Device) AllocatedBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// Context owns buffers and queues for one device, the analogue of
// clCreateContext.
type Context struct {
	device *Device
}

// NewContext creates a context bound to the device.
func NewContext(d *Device) (*Context, error) {
	if d == nil {
		return nil, fmt.Errorf("opencl: nil device")
	}
	return &Context{device: d}, nil
}

// Device returns the context's device.
func (c *Context) Device() *Device { return c.device }
