package opencl

import (
	"fmt"
	"sync"
)

// groupCtx is the shared state of one executing work-group: the local
// memory allocations and the barrier.
type groupCtx struct {
	kernel    *Kernel
	groupID   int
	localSize int
	glSize    int
	locals    map[int][]float64
	localElem map[int]int64
	bar       *barrier
	hazard    *hazardTracker
}

// WorkItem is the per-work-item execution context handed to kernel
// functions. It exposes the OpenCL work-item built-ins, the argument
// list, the metered memory accessors and the barrier. A WorkItem must not
// escape its kernel invocation.
type WorkItem struct {
	g        *groupCtx
	globalID int
	localID  int
	stats    Counters
}

// GlobalID returns get_global_id(0).
func (wi *WorkItem) GlobalID() int { return wi.globalID }

// LocalID returns get_local_id(0).
func (wi *WorkItem) LocalID() int { return wi.localID }

// GroupID returns get_group_id(0).
func (wi *WorkItem) GroupID() int { return wi.g.groupID }

// GlobalSize returns get_global_size(0).
func (wi *WorkItem) GlobalSize() int { return wi.g.glSize }

// LocalSize returns get_local_size(0).
func (wi *WorkItem) LocalSize() int { return wi.g.localSize }

// arg fetches a bound argument with a diagnostic on mismatch.
func (wi *WorkItem) arg(i int) any {
	args := wi.g.kernel.args
	if i < 0 || i >= len(args) {
		panic(fmt.Errorf("opencl: kernel %q has no arg %d (got %d args)", wi.g.kernel.Name, i, len(args)))
	}
	return args[i]
}

// Buffer returns argument i as a global buffer.
func (wi *WorkItem) Buffer(i int) *Buffer {
	b, ok := wi.arg(i).(*Buffer)
	if !ok {
		panic(fmt.Errorf("opencl: kernel %q arg %d is %T, not *Buffer", wi.g.kernel.Name, i, wi.arg(i)))
	}
	return b
}

// Float returns argument i as a float64 scalar.
func (wi *WorkItem) Float(i int) float64 {
	f, ok := wi.arg(i).(float64)
	if !ok {
		panic(fmt.Errorf("opencl: kernel %q arg %d is %T, not float64", wi.g.kernel.Name, i, wi.arg(i)))
	}
	return f
}

// Int returns argument i as an int scalar.
func (wi *WorkItem) Int(i int) int {
	v, ok := wi.arg(i).(int)
	if !ok {
		panic(fmt.Errorf("opencl: kernel %q arg %d is %T, not int", wi.g.kernel.Name, i, wi.arg(i)))
	}
	return v
}

// Local returns the work-group's local-memory array bound at argument i.
// All work-items of the group see the same backing array; accesses should
// go through LoadLocal/StoreLocal so they are metered.
func (wi *WorkItem) Local(i int) []float64 {
	l, ok := wi.g.locals[i]
	if !ok {
		panic(fmt.Errorf("opencl: kernel %q arg %d is not a LocalAlloc", wi.g.kernel.Name, i))
	}
	return l
}

// Load reads global memory and meters the traffic.
func (wi *WorkItem) Load(b *Buffer, idx int) float64 {
	wi.stats.GlobalReads += b.elemBytes
	if wi.g.hazard != nil {
		wi.g.hazard.note(b, idx, wi.globalID, false)
	}
	return b.at(idx)
}

// Store writes global memory and meters the traffic.
func (wi *WorkItem) Store(b *Buffer, idx int, v float64) {
	wi.stats.GlobalWrites += b.elemBytes
	if wi.g.hazard != nil {
		wi.g.hazard.note(b, idx, wi.globalID, true)
	}
	b.set(idx, v)
}

// LoadLocal reads the local array bound at argument arg.
func (wi *WorkItem) LoadLocal(arg, idx int) float64 {
	l := wi.Local(arg)
	if idx < 0 || idx >= len(l) {
		panic(fmt.Errorf("opencl: kernel %q local arg %d read out of range: %d of %d",
			wi.g.kernel.Name, arg, idx, len(l)))
	}
	wi.stats.LocalReads += wi.g.localElem[arg]
	return l[idx]
}

// StoreLocal writes the local array bound at argument arg.
func (wi *WorkItem) StoreLocal(arg, idx int, v float64) {
	l := wi.Local(arg)
	if idx < 0 || idx >= len(l) {
		panic(fmt.Errorf("opencl: kernel %q local arg %d write out of range: %d of %d",
			wi.g.kernel.Name, arg, idx, len(l)))
	}
	wi.stats.LocalWrites += wi.g.localElem[arg]
	l[idx] = v
}

// AddFlops tallies floating-point work for the performance models.
func (wi *WorkItem) AddFlops(n int) { wi.stats.Flops += int64(n) }

// Barrier synchronises the work-group (CLK_LOCAL_MEM_FENCE semantics: all
// local and global accesses issued before the barrier are visible after
// it). Calling it from a kernel created with usesBarriers=false panics,
// because the sequential schedule cannot honour it.
func (wi *WorkItem) Barrier() {
	if wi.g.bar == nil {
		panic(fmt.Errorf("opencl: kernel %q calls Barrier but was created with usesBarriers=false", wi.g.kernel.Name))
	}
	wi.stats.Barriers++
	wi.g.bar.await()
}

// errBarrierBroken is the panic value delivered to work-items parked on a
// barrier whose group had another work-item fail; it lets the whole group
// unwind instead of deadlocking.
var errBarrierBroken = fmt.Errorf("opencl: work-group barrier broken by a failed work-item")

// barrier is a reusable (cyclic) barrier for n parties with Java-style
// breakage semantics.
type barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	parties    int
	waiting    int
	generation uint64
	broken     bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(errBarrierBroken)
	}
	gen := b.generation
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.generation++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.generation && !b.broken {
		b.cond.Wait()
	}
	broken := b.broken
	b.mu.Unlock()
	if broken {
		panic(errBarrierBroken)
	}
}

// breakBarrier wakes every parked work-item with errBarrierBroken and
// makes all future awaits fail immediately.
func (b *barrier) breakBarrier() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
