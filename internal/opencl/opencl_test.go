package opencl

import (
	"strings"
	"testing"
)

func testDevice() DeviceInfo {
	return DeviceInfo{
		Name:             "test-fpga",
		Vendor:           "testvendor",
		Type:             Accelerator,
		ComputeUnits:     4,
		GlobalMemBytes:   1 << 20,
		LocalMemBytes:    1 << 14,
		MaxWorkGroupSize: 256,
	}
}

func newCtx(t *testing.T) (*Context, *Device) {
	t.Helper()
	p := NewPlatform("Test SDK", "testvendor", "OpenCL 1.1", testDevice())
	devs := p.Devices(Accelerator)
	if len(devs) != 1 {
		t.Fatalf("got %d accelerator devices", len(devs))
	}
	ctx, err := NewContext(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	return ctx, devs[0]
}

func TestPlatformDeviceFiltering(t *testing.T) {
	p := NewPlatform("SDK", "v", "1.1",
		DeviceInfo{Name: "c", Type: CPU},
		DeviceInfo{Name: "g", Type: GPU},
		DeviceInfo{Name: "f", Type: Accelerator},
	)
	if got := len(p.Devices(-1)); got != 3 {
		t.Errorf("all devices: %d", got)
	}
	if got := p.Devices(GPU); len(got) != 1 || got[0].Info.Name != "g" {
		t.Errorf("GPU filter: %+v", got)
	}
	if got := len(p.Devices(CPU)); got != 1 {
		t.Errorf("CPU filter: %d", got)
	}
}

func TestDeviceTypeString(t *testing.T) {
	for _, c := range []struct {
		t    DeviceType
		want string
	}{{CPU, "cpu"}, {GPU, "gpu"}, {Accelerator, "accelerator"}} {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v", got)
		}
	}
	if !strings.Contains(DeviceType(9).String(), "9") {
		t.Error("unknown type should include number")
	}
}

func TestNewContextNilDevice(t *testing.T) {
	if _, err := NewContext(nil); err == nil {
		t.Error("nil device should fail")
	}
}

func TestBufferLifecycle(t *testing.T) {
	ctx, dev := newCtx(t)
	b, err := ctx.CreateBuffer("x", 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 100 || b.Bytes() != 800 || b.ElemBytes() != 8 || b.Name() != "x" {
		t.Errorf("buffer metadata wrong: %+v", b)
	}
	if got := dev.AllocatedBytes(); got != 800 {
		t.Errorf("allocated = %d", got)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
	if got := dev.AllocatedBytes(); got != 0 {
		t.Errorf("allocated after release = %d", got)
	}
	if err := b.Release(); err == nil {
		t.Error("double release should fail")
	}
}

func TestBufferCreationErrors(t *testing.T) {
	ctx, _ := newCtx(t)
	if _, err := ctx.CreateBuffer("bad", 0, 8); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := ctx.CreateBuffer("bad", 10, 3); err == nil {
		t.Error("elem size 3 should fail")
	}
	// Exhaust global memory (device has 1 MiB).
	if _, err := ctx.CreateBuffer("huge", 1<<20, 8); err == nil {
		t.Error("over-allocation should fail")
	}
}

func TestSinglePrecisionBufferAccounting(t *testing.T) {
	ctx, _ := newCtx(t)
	b, err := ctx.CreateBuffer("sp", 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bytes() != 40 {
		t.Errorf("Bytes = %d, want 40", b.Bytes())
	}
}

func TestWriteReadBuffer(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	b, err := ctx.CreateBuffer("io", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3}
	if _, err := q.EnqueueWriteBuffer(b, 2, in); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	if _, err := q.EnqueueReadBuffer(b, 2, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	st := q.Counters()
	if st.HostWrites != 24 || st.HostReads != 24 || st.HostTransfers != 2 {
		t.Errorf("transfer accounting: %+v", st)
	}
}

func TestTransferRangeErrors(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	b, _ := ctx.CreateBuffer("io", 4, 8)
	if _, err := q.EnqueueWriteBuffer(b, 2, make([]float64, 3)); err == nil {
		t.Error("overflowing write should fail")
	}
	if _, err := q.EnqueueReadBuffer(b, -1, make([]float64, 1)); err == nil {
		t.Error("negative offset read should fail")
	}
}
