package opencl

import (
	"strings"
	"testing"
)

// TestHazardDetectsInPlaceUpdate reproduces the design rationale of §IV-A:
// updating the tree in place (read and write the same buffer in one
// NDRange) is a memory conflict; ping-pong buffering is not.
func TestHazardDetectsInPlaceUpdate(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()

	buf, _ := ctx.CreateBuffer("tree", 32, 8)
	inPlace := NewKernel("inplace", false, func(wi *WorkItem) {
		i := wi.GlobalID()
		if i+1 < wi.Buffer(0).Len() {
			v := wi.Load(wi.Buffer(0), i+1) // reads neighbour...
			wi.Store(wi.Buffer(0), i, v)    // ...which another work-item writes
		}
	})
	if err := inPlace.SetArgs(buf); err != nil {
		t.Fatal(err)
	}
	_, err := q.EnqueueNDRange(inPlace, 32, 8)
	if err == nil || !strings.Contains(err.Error(), "memory hazards") {
		t.Fatalf("in-place update should report hazards, got %v", err)
	}
}

func TestHazardPassesPingPong(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()

	ping, _ := ctx.CreateBuffer("ping", 32, 8)
	pong, _ := ctx.CreateBuffer("pong", 32, 8)
	k := NewKernel("pingpong", false, func(wi *WorkItem) {
		i := wi.GlobalID()
		if i+1 < wi.Buffer(0).Len() {
			v := wi.Load(wi.Buffer(0), i+1)
			wi.Store(wi.Buffer(1), i, v)
		}
	})
	if err := k.SetArgs(ping, pong); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 32, 8); err != nil {
		t.Fatalf("ping-pong access must be hazard-free: %v", err)
	}
	// Swap and run again: still clean, and each NDRange is checked
	// independently so the swap is not a false positive.
	if err := k.SetArgs(pong, ping); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 32, 8); err != nil {
		t.Fatalf("swapped ping-pong must be hazard-free: %v", err)
	}
}

func TestHazardDetectsWriteWrite(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()
	out, _ := ctx.CreateBuffer("out", 4, 8)
	k := NewKernel("collide", false, func(wi *WorkItem) {
		wi.Store(wi.Buffer(0), 0, float64(wi.GlobalID())) // everyone writes slot 0
	})
	if err := k.SetArgs(out); err != nil {
		t.Fatal(err)
	}
	_, err := q.EnqueueNDRange(k, 8, 4)
	if err == nil || !strings.Contains(err.Error(), "write/write") {
		t.Fatalf("write/write collision should be reported, got %v", err)
	}
}

func TestHazardAllowsPrivatePerItemSlots(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()
	out, _ := ctx.CreateBuffer("out", 16, 8)
	k := NewKernel("disjoint", false, func(wi *WorkItem) {
		i := wi.GlobalID()
		wi.Store(wi.Buffer(0), i, 1)
		if wi.Load(wi.Buffer(0), i) != 1 { // re-reading one's own slot is fine
			panic("lost own write")
		}
	})
	if err := k.SetArgs(out); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 16, 4); err != nil {
		t.Fatalf("disjoint slots must be hazard-free: %v", err)
	}
}

func TestHazardDisable(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()
	q.DisableHazardCheck()
	out, _ := ctx.CreateBuffer("out", 4, 8)
	k := NewKernel("collide", false, func(wi *WorkItem) {
		wi.Store(wi.Buffer(0), 0, 1)
	})
	if err := k.SetArgs(out); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 8, 4); err != nil {
		t.Fatalf("disabled checker must not interfere: %v", err)
	}
}

// TestKernelsHazardFree runs real ping-pong style traffic through the
// checker at small scale to guard the invariant the drivers rely on.
func TestHazardTrackerDeduplicates(t *testing.T) {
	h := newHazardTracker()
	ctx, _ := newCtx(t)
	b, _ := ctx.CreateBuffer("b", 4, 8)
	for i := 0; i < 5; i++ {
		h.note(b, 0, 1, true)
		h.note(b, 0, 2, true)
	}
	rep := h.report()
	if len(rep) != 1 {
		t.Errorf("expected 1 deduplicated conflict, got %d: %v", len(rep), rep)
	}
}
