package opencl

import (
	"fmt"
	"sort"
	"sync"
)

// hazardTracker records element-granular global-memory accesses during
// one NDRange and reports read/write and write/write conflicts between
// different work-items. OpenCL gives no ordering between work-items of
// an NDRange outside barriers (and none at all across work-groups), so
// such conflicts are races: exactly the hazard the paper's ping-pong
// buffering exists to avoid ("To avoid any memory conflict, ping-pong
// buffering is used", §IV-A). The tracker is optional — element-level
// bookkeeping is costly — and intended for tests and kernel bring-up.
type hazardTracker struct {
	mu sync.Mutex
	// access maps buffer -> element -> first accessor and kind.
	access map[*Buffer]map[int]accessRecord
	found  []string
}

type accessRecord struct {
	workItem int
	wrote    bool
}

func newHazardTracker() *hazardTracker {
	return &hazardTracker{access: make(map[*Buffer]map[int]accessRecord)}
}

// note records one access and logs a conflict when a different work-item
// already touched the element incompatibly.
func (h *hazardTracker) note(b *Buffer, idx int, wi int, write bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.access[b]
	if m == nil {
		m = make(map[int]accessRecord)
		h.access[b] = m
	}
	prev, seen := m[idx]
	if !seen {
		m[idx] = accessRecord{workItem: wi, wrote: write}
		return
	}
	if prev.workItem != wi && (prev.wrote || write) {
		kind := "read/write"
		if prev.wrote && write {
			kind = "write/write"
		}
		a, c := prev.workItem, wi
		if a > c {
			a, c = c, a
		}
		h.found = append(h.found, fmt.Sprintf(
			"%s conflict on buffer %q element %d between work-items %d and %d",
			kind, b.name, idx, a, c))
	}
	if write {
		m[idx] = accessRecord{workItem: wi, wrote: true}
	}
}

// report returns the recorded conflicts, deduplicated and sorted.
func (h *hazardTracker) report() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := make(map[string]bool, len(h.found))
	var out []string
	for _, s := range h.found {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// EnableHazardCheck turns on element-granular conflict detection for
// subsequent EnqueueNDRange calls on this queue. Each NDRange is checked
// independently (the OpenCL memory model orders commands, not
// work-items). Detected conflicts turn the enqueue into an error.
func (q *CommandQueue) EnableHazardCheck() {
	q.mu.Lock()
	q.hazards = true
	q.mu.Unlock()
}

// DisableHazardCheck turns conflict detection back off.
func (q *CommandQueue) DisableHazardCheck() {
	q.mu.Lock()
	q.hazards = false
	q.mu.Unlock()
}

func (q *CommandQueue) hazardsEnabled() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hazards
}
