package opencl

import "fmt"

// KernelFunc is the body of a kernel, executed once per work-item. It
// corresponds to the OpenCL C function marked __kernel; the WorkItem
// argument plays the role of the implicit work-item state (get_global_id
// and friends) plus the argument list.
type KernelFunc func(wi *WorkItem)

// LocalAlloc declares a __local memory argument: a scratch array of n
// elements shared by the work-items of each work-group.
type LocalAlloc struct {
	N         int
	ElemBytes int
}

// Kernel pairs a kernel function with its bound arguments, the analogue
// of clCreateKernel + clSetKernelArg.
type Kernel struct {
	Name string
	// UsesBarriers must be true for kernels that call WorkItem.Barrier.
	// Such kernels run their work-groups with one goroutine per work-item
	// so that the barrier can rendezvous; barrier-free kernels use a
	// faster sequential schedule per group (the results are identical —
	// OpenCL guarantees nothing about intra-group ordering without
	// barriers).
	UsesBarriers bool

	fn   KernelFunc
	args []any
}

// NewKernel creates a kernel from a function body.
func NewKernel(name string, usesBarriers bool, fn KernelFunc) *Kernel {
	return &Kernel{Name: name, UsesBarriers: usesBarriers, fn: fn}
}

// SetArgs binds the full argument list. Allowed argument types: *Buffer
// (global memory), LocalAlloc (local memory), float64, int. Rebinding is
// allowed between enqueues, as in OpenCL.
func (k *Kernel) SetArgs(args ...any) error {
	for i, a := range args {
		switch a.(type) {
		case *Buffer, LocalAlloc, float64, int:
		default:
			return fmt.Errorf("opencl: kernel %q arg %d has unsupported type %T", k.Name, i, a)
		}
	}
	k.args = args
	return nil
}

// localArgs returns the indices and specs of the kernel's local-memory
// arguments.
func (k *Kernel) localArgs() map[int]LocalAlloc {
	out := make(map[int]LocalAlloc)
	for i, a := range k.args {
		if l, ok := a.(LocalAlloc); ok {
			out[i] = l
		}
	}
	return out
}
