package opencl

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNDRangeSquareKernel(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	in, _ := ctx.CreateBuffer("in", 64, 8)
	out, _ := ctx.CreateBuffer("out", 64, 8)
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	if _, err := q.EnqueueWriteBuffer(in, 0, data); err != nil {
		t.Fatal(err)
	}

	k := NewKernel("square", false, func(wi *WorkItem) {
		i := wi.GlobalID()
		x := wi.Load(wi.Buffer(0), i)
		wi.Store(wi.Buffer(1), i, x*x)
		wi.AddFlops(1)
	})
	if err := k.SetArgs(in, out); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueNDRange(k, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stats.WorkItems != 64 || ev.Stats.WorkGroups != 4 {
		t.Errorf("stats: %+v", ev.Stats)
	}
	if ev.Stats.GlobalReads != 64*8 || ev.Stats.GlobalWrites != 64*8 || ev.Stats.Flops != 64 {
		t.Errorf("traffic: %+v", ev.Stats)
	}

	res := make([]float64, 64)
	if _, err := q.EnqueueReadBuffer(out, 0, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != float64(i)*float64(i) {
			t.Fatalf("res[%d] = %v", i, res[i])
		}
	}
}

func TestNDRangeSizeValidation(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("nop", false, func(*WorkItem) {})
	if _, err := q.EnqueueNDRange(k, 0, 1); err == nil {
		t.Error("zero global size should fail")
	}
	if _, err := q.EnqueueNDRange(k, 10, 3); err == nil {
		t.Error("non-multiple sizes should fail")
	}
	if _, err := q.EnqueueNDRange(k, 1024, 512); err == nil {
		t.Error("local size above device max (256) should fail")
	}
}

func TestWorkItemIndexing(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	const global, local = 48, 12
	var bad atomic.Int64
	k := NewKernel("idx", false, func(wi *WorkItem) {
		okID := wi.GlobalID() == wi.GroupID()*wi.LocalSize()+wi.LocalID()
		okSizes := wi.GlobalSize() == global && wi.LocalSize() == local
		if !okID || !okSizes {
			bad.Add(1)
		}
	})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, global, local); err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Errorf("%d work-items saw inconsistent indexing", bad.Load())
	}
}

func TestBarrierReductionKernel(t *testing.T) {
	// Classic local-memory tree reduction: needs working barriers and
	// shared local memory to produce the right answer.
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	const groups, local = 4, 64
	in, _ := ctx.CreateBuffer("in", groups*local, 8)
	out, _ := ctx.CreateBuffer("out", groups, 8)
	data := make([]float64, groups*local)
	for i := range data {
		data[i] = 1
	}
	if _, err := q.EnqueueWriteBuffer(in, 0, data); err != nil {
		t.Fatal(err)
	}

	k := NewKernel("reduce", true, func(wi *WorkItem) {
		l := wi.LocalID()
		wi.StoreLocal(2, l, wi.Load(wi.Buffer(0), wi.GlobalID()))
		wi.Barrier()
		for stride := wi.LocalSize() / 2; stride > 0; stride /= 2 {
			if l < stride {
				s := wi.LoadLocal(2, l) + wi.LoadLocal(2, l+stride)
				wi.AddFlops(1)
				//binopt:ignore barrieruse the l < stride guard keeps writers (l < stride) and read targets (l+stride >= stride) in disjoint halves
				wi.StoreLocal(2, l, s)
			}
			wi.Barrier()
		}
		if l == 0 {
			wi.Store(wi.Buffer(1), wi.GroupID(), wi.LoadLocal(2, 0))
		}
	})
	if err := k.SetArgs(in, out, LocalAlloc{N: local, ElemBytes: 8}); err != nil {
		t.Fatal(err)
	}
	ev, err := q.EnqueueNDRange(k, groups*local, local)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, groups)
	if _, err := q.EnqueueReadBuffer(out, 0, res); err != nil {
		t.Fatal(err)
	}
	for g, v := range res {
		if v != local {
			t.Errorf("group %d sum = %v, want %d", g, v, local)
		}
	}
	if ev.Stats.Barriers == 0 || ev.Stats.LocalReads == 0 || ev.Stats.LocalWrites == 0 {
		t.Errorf("local/barrier accounting missing: %+v", ev.Stats)
	}
}

func TestBarrierCorrectnessProperty(t *testing.T) {
	// For random group sizes, a two-phase write/read across a barrier must
	// always observe the neighbour's value (would race without a real
	// barrier).
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	f := func(rawLocal uint8) bool {
		local := 2 + int(rawLocal)%31
		out, err := ctx.CreateBuffer("o", local, 8)
		if err != nil {
			return false
		}
		defer out.Release()
		k := NewKernel("shift", true, func(wi *WorkItem) {
			l := wi.LocalID()
			wi.StoreLocal(1, l, float64(l))
			wi.Barrier()
			neighbour := wi.LoadLocal(1, (l+1)%wi.LocalSize())
			wi.Store(wi.Buffer(0), l, neighbour)
		})
		if err := k.SetArgs(out, LocalAlloc{N: local, ElemBytes: 8}); err != nil {
			return false
		}
		if _, err := q.EnqueueNDRange(k, local, local); err != nil {
			return false
		}
		res := make([]float64, local)
		if _, err := q.EnqueueReadBuffer(out, 0, res); err != nil {
			return false
		}
		for l := range res {
			if res[l] != float64((l+1)%local) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKernelPanicBecomesError(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("oob", false, func(wi *WorkItem) {
		wi.Load(wi.Buffer(0), 99) // out of range
	})
	b, _ := ctx.CreateBuffer("small", 4, 8)
	if err := k.SetArgs(b); err != nil {
		t.Fatal(err)
	}
	_, err := q.EnqueueNDRange(k, 4, 4)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected out-of-range error, got %v", err)
	}
}

func TestKernelPanicWithBarriersDoesNotDeadlock(t *testing.T) {
	// One work-item fails before the barrier; the rest must unwind via the
	// broken-barrier path rather than deadlocking.
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("halffail", true, func(wi *WorkItem) {
		if wi.LocalID() == 3 {
			panic("injected failure")
		}
		wi.Barrier()
	})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	_, err := q.EnqueueNDRange(k, 8, 8)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("expected injected failure, got %v", err)
	}
}

func TestBarrierInSequentialKernelFails(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("misdeclared", false, func(wi *WorkItem) {
		wi.Barrier()
	})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 4); err == nil {
		t.Error("Barrier in usesBarriers=false kernel should error")
	}
}

func TestLocalMemoryLimit(t *testing.T) {
	ctx, _ := newCtx(t) // device has 16 KiB local
	q := ctx.NewQueue()
	k := NewKernel("biglocal", false, func(*WorkItem) {})
	if err := k.SetArgs(LocalAlloc{N: 4096, ElemBytes: 8}); err != nil { // 32 KiB
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 4); err == nil {
		t.Error("local alloc above device limit should fail")
	}
}

func TestLocalAllocValidation(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("badlocal", false, func(*WorkItem) {})
	if err := k.SetArgs(LocalAlloc{N: 0, ElemBytes: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 4); err == nil {
		t.Error("zero-size local alloc should fail at enqueue")
	}
}

func TestSetArgsRejectsUnknownTypes(t *testing.T) {
	k := NewKernel("k", false, func(*WorkItem) {})
	if err := k.SetArgs("a string"); err == nil {
		t.Error("string arg should be rejected")
	}
	if err := k.SetArgs(3.0, 7, LocalAlloc{N: 1, ElemBytes: 8}); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
}

func TestArgAccessorsTypeMismatch(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	b, _ := ctx.CreateBuffer("b", 4, 8)
	k := NewKernel("mismatch", false, func(wi *WorkItem) {
		wi.Float(0) // arg 0 is a buffer
	})
	if err := k.SetArgs(b); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 1, 1); err == nil {
		t.Error("type mismatch should surface as error")
	}
	k2 := NewKernel("missing", false, func(wi *WorkItem) {
		wi.Int(5)
	})
	if err := k2.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k2, 1, 1); err == nil {
		t.Error("missing arg should surface as error")
	}
}

func TestScalarArgs(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	out, _ := ctx.CreateBuffer("out", 4, 8)
	k := NewKernel("scalar", false, func(wi *WorkItem) {
		wi.Store(wi.Buffer(0), wi.GlobalID(), wi.Float(1)*float64(wi.Int(2)))
	})
	if err := k.SetArgs(out, 2.5, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 2); err != nil {
		t.Fatal(err)
	}
	res := make([]float64, 4)
	if _, err := q.EnqueueReadBuffer(out, 0, res); err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 10 {
			t.Errorf("res[%d] = %v, want 10", i, v)
		}
	}
}

func TestQueueEventLog(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	b, _ := ctx.CreateBuffer("b", 4, 8)
	if _, err := q.EnqueueWriteBuffer(b, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	k := NewKernel("nop", false, func(*WorkItem) {})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 2, 2); err != nil {
		t.Fatal(err)
	}
	evs := q.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if !strings.HasPrefix(evs[0].Command, "write") || !strings.HasPrefix(evs[1].Command, "ndrange") {
		t.Errorf("event commands: %v, %v", evs[0].Command, evs[1].Command)
	}
	q.ResetCounters()
	if got := q.Counters(); got != (Counters{}) {
		t.Errorf("counters after reset: %+v", got)
	}
}

func TestCountersAddAndString(t *testing.T) {
	a := Counters{Kernels: 1, GlobalReads: 10, HostWrites: 5, HostTransfers: 1, Flops: 7}
	b := Counters{Kernels: 2, GlobalWrites: 4, HostReads: 3, HostTransfers: 2, Barriers: 9}
	a.Add(b)
	if a.Kernels != 3 || a.GlobalBytes() != 14 || a.HostBytes() != 8 || a.Barriers != 9 {
		t.Errorf("Add result: %+v", a)
	}
	s := a.String()
	if !strings.Contains(s, "kernels=3") || !strings.Contains(s, "flops=7") {
		t.Errorf("String: %q", s)
	}
}

func TestSequentialAndBarrierSchedulesAgree(t *testing.T) {
	// The same barrier-free computation must give identical results under
	// both intra-group schedules.
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	run := func(usesBarriers bool) []float64 {
		out, err := ctx.CreateBuffer("o", 32, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer out.Release()
		k := NewKernel("f", usesBarriers, func(wi *WorkItem) {
			x := float64(wi.GlobalID())
			wi.Store(wi.Buffer(0), wi.GlobalID(), math.Sqrt(x)+x)
		})
		if err := k.SetArgs(out); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueNDRange(k, 32, 8); err != nil {
			t.Fatal(err)
		}
		res := make([]float64, 32)
		if _, err := q.EnqueueReadBuffer(out, 0, res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("schedules disagree at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestFinishIsSafeAnytime(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.Finish() // empty queue
	k := NewKernel("nop", false, func(*WorkItem) {})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 4); err != nil {
		t.Fatal(err)
	}
	q.Finish() // after work
	if got := q.Counters().Kernels; got != 1 {
		t.Errorf("kernels = %d", got)
	}
}

// TestNDRangeWorkGroupCeiling pins the CL_INVALID_WORK_GROUP_SIZE
// behaviour at the device boundary: a work-group exactly at
// MaxWorkGroupSize launches, one past it is rejected with an error
// naming both sizes, and a device reporting no limit accepts any group.
func TestNDRangeWorkGroupCeiling(t *testing.T) {
	ctx, dev := newCtx(t)
	q := ctx.NewQueue()
	k := NewKernel("nop", false, func(*WorkItem) {})
	max := dev.Info.MaxWorkGroupSize

	if _, err := q.EnqueueNDRange(k, max, max); err != nil {
		t.Fatalf("local size == device max (%d) must launch: %v", max, err)
	}
	_, err := q.EnqueueNDRange(k, 2*(max+1), max+1)
	if err == nil {
		t.Fatalf("local size %d > device max %d must be rejected", max+1, max)
	}
	for _, want := range []string{"local size", "exceeds device max", "257", "256"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	unlimited := testDevice()
	unlimited.MaxWorkGroupSize = 0
	uctx, err := NewContext(&Device{Info: unlimited})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uctx.NewQueue().EnqueueNDRange(k, 4096, 4096); err != nil {
		t.Errorf("device without a work-group limit must accept any local size: %v", err)
	}
}

// TestEventRingBounded: the event log is a bounded ring — a long
// command stream keeps only the newest window, counts the evictions,
// and never perturbs the exact counters.
func TestEventRingBounded(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	q.SetEventCapacity(4)
	b, _ := ctx.CreateBuffer("b", 1, 8)
	const writes = 11
	for i := 0; i < writes; i++ {
		if _, err := q.EnqueueWriteBuffer(b, 0, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	evs := q.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Queued.Before(evs[i-1].Queued) {
			t.Errorf("events out of order at %d", i)
		}
	}
	if got := q.DroppedEvents(); got != writes-4 {
		t.Errorf("dropped = %d, want %d", got, writes-4)
	}
	// Counters stay exact across the whole stream, not just the window.
	if got := q.Counters().HostTransfers; got != writes {
		t.Errorf("HostTransfers = %d, want %d (ring must not lose counters)", got, writes)
	}
}

// TestEventTimestamps: every command carries the four profiling
// timestamps in CL order (queued <= submit <= start <= end).
func TestEventTimestamps(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	b, _ := ctx.CreateBuffer("b", 8, 8)
	if _, err := q.EnqueueWriteBuffer(b, 0, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	k := NewKernel("nop", false, func(*WorkItem) {})
	if err := k.SetArgs(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(k, 4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueReadBuffer(b, 0, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	for i, ev := range q.Events() {
		if ev.Queued.IsZero() || ev.End.IsZero() {
			t.Fatalf("event %d missing timestamps: %+v", i, ev)
		}
		if ev.Submit.Before(ev.Queued) || ev.Start.Before(ev.Submit) || ev.End.Before(ev.Start) {
			t.Errorf("event %d timestamps out of CL order: q=%v s=%v st=%v e=%v",
				i, ev.Queued, ev.Submit, ev.Start, ev.End)
		}
		if ev.Duration() < 0 {
			t.Errorf("event %d negative duration", i)
		}
	}
}

// TestEventHook: the hook sees every command with its stats, the
// profiling-callback analogue telemetry subscribes to.
func TestEventHook(t *testing.T) {
	ctx, _ := newCtx(t)
	q := ctx.NewQueue()
	var got []Event
	q.SetEventHook(func(ev Event) { got = append(got, ev) })
	b, _ := ctx.CreateBuffer("b", 2, 8)
	if _, err := q.EnqueueWriteBuffer(b, 0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueReadBuffer(b, 0, make([]float64, 2)); err != nil {
		t.Fatal(err)
	}
	q.SetEventHook(nil)
	if _, err := q.EnqueueWriteBuffer(b, 0, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hook saw %d events, want 2 (unset must stop delivery)", len(got))
	}
	if got[0].Stats.HostWrites != 16 || got[1].Stats.HostReads != 16 {
		t.Errorf("hook events carry wrong stats: %+v", got)
	}
}
