// Package cpumodel prices the paper's software reference in time: a
// single-core C program on a Xeon X5450 (§V-A). The model is a
// cycles-per-node-update abstraction calibrated on the published 222
// options/s (double precision, N=1024); the single-precision build is
// scaled by the published single/double ratio, which is below one — the
// reference code ran slower in single precision.
package cpumodel

import (
	"fmt"

	"binopt/internal/device"
)

// Model estimates reference-software run times.
type Model struct {
	Spec device.CPUSpec
}

// New returns a model over the given CPU.
func New(spec device.CPUSpec) Model { return Model{Spec: spec} }

// OptionsPerSec returns the single-core pricing throughput for trees of
// the given depth.
func (m Model) OptionsPerSec(steps int, single bool) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("cpumodel: steps must be positive, got %d", steps)
	}
	nodes := float64(steps) * float64(steps+1) / 2
	perSec := m.Spec.ClockHz / m.Spec.CyclesPerNode / nodes
	if single {
		perSec *= m.Spec.SingleSpeedup
	}
	return perSec, nil
}

// Seconds returns the wall time to price n options sequentially.
func (m Model) Seconds(n int64, steps int, single bool) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("cpumodel: negative option count %d", n)
	}
	ps, err := m.OptionsPerSec(steps, single)
	if err != nil {
		return 0, err
	}
	return float64(n) / ps, nil
}

// PowerWatts returns the dissipation attributed to the run. The paper
// uses the processor TDP for the energy-per-option comparison.
func (m Model) PowerWatts() float64 { return m.Spec.TDPWatts }
