package cpumodel

import (
	"math"
	"testing"

	"binopt/internal/device"
)

func TestReferenceCalibration(t *testing.T) {
	m := New(device.XeonX5450())
	// Paper Table II: 222 options/s double, 116 single, at N=1024.
	d, err := m.OptionsPerSec(1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-222) > 6 {
		t.Errorf("double = %.1f options/s, want ~222", d)
	}
	s, err := m.OptionsPerSec(1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-116) > 4 {
		t.Errorf("single = %.1f options/s, want ~116", s)
	}
	if s >= d {
		t.Error("the published reference is slower in single precision")
	}
}

func TestThroughputScalesQuadratically(t *testing.T) {
	m := New(device.XeonX5450())
	a, err := m.OptionsPerSec(256, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.OptionsPerSec(512, false)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the depth roughly quadruples the node count.
	ratio := a / b
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("depth-doubling throughput ratio = %.2f, want ~4", ratio)
	}
}

func TestSeconds(t *testing.T) {
	m := New(device.XeonX5450())
	sec, err := m.Seconds(2220, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sec-10) > 0.5 {
		t.Errorf("2220 options should take ~10 s, got %.2f", sec)
	}
	if _, err := m.Seconds(-1, 1024, false); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := m.OptionsPerSec(0, false); err == nil {
		t.Error("zero steps should fail")
	}
}

func TestPowerIsTDP(t *testing.T) {
	m := New(device.XeonX5450())
	if m.PowerWatts() != 120 {
		t.Errorf("power = %v", m.PowerWatts())
	}
}
