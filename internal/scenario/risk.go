package scenario

import (
	"fmt"
	"math"
	"sort"
)

// RiskMeasure is one confidence level's tail summary of the scenario
// P&L distribution. VaR is the loss at the (1-confidence) empirical
// quantile (positive = loss); ES is the mean loss of the scenarios at
// or beyond that quantile.
type RiskMeasure struct {
	Confidence float64 `json:"confidence"`
	VaR        float64 `json:"var"`
	ES         float64 `json:"es"`
}

// RiskMeasures computes VaR and expected shortfall at each confidence
// level from the per-scenario P&L. The computation is deterministic —
// one ascending sort, fixed-order tail summation — so a fleet router
// recomputing it over bit-identical merged P&L reproduces a solo
// node's numbers exactly. An empty P&L slice yields zero measures.
func RiskMeasures(pnl []float64, confidences []float64) ([]RiskMeasure, error) {
	out := make([]RiskMeasure, len(confidences))
	sorted := make([]float64, len(pnl))
	copy(sorted, pnl)
	sort.Float64s(sorted)
	for i, c := range confidences {
		if math.IsNaN(c) || c <= 0 || c >= 1 {
			return nil, fmt.Errorf("scenario: confidence level must be in (0,1), got %v", c)
		}
		out[i] = RiskMeasure{Confidence: c}
		if len(sorted) == 0 {
			continue
		}
		// k tail scenarios: the worst ceil((1-c)·S), at least one.
		k := int(math.Ceil((1 - c) * float64(len(sorted))))
		if k < 1 {
			k = 1
		}
		if k > len(sorted) {
			k = len(sorted)
		}
		out[i].VaR = -sorted[k-1]
		var tail float64
		for _, v := range sorted[:k] {
			tail += v
		}
		out[i].ES = -(tail / float64(k))
	}
	return out, nil
}
