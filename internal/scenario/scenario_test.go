package scenario

import (
	"math"
	"strings"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/option"
)

// testBook spans rights × styles with signed quantities, the mix the
// bit-parity sweep must cover.
func testBook(n int) []Position {
	book := make([]Position, n)
	for i := range book {
		o := option.Option{
			Right:  option.Put,
			Style:  option.American,
			Spot:   100,
			Strike: 85 + float64(i%40),
			Rate:   0.03,
			Sigma:  0.12 + 0.002*float64(i%80),
			T:      0.25 + 0.05*float64(i%8),
		}
		if i%2 == 1 {
			o.Right = option.Call
		}
		if i%3 == 2 {
			o.Style = option.European
		}
		q := float64(i%7 + 1)
		if i%5 == 0 {
			q = -q
		}
		book[i] = Position{Option: o, Quantity: q}
	}
	return book
}

func mustEngine(t *testing.T, steps int) *lattice.Engine {
	t.Helper()
	e, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// shockKinds covers the three shock families: pure multiplicative spot
// bumps, pure vol bumps, pure parallel rate shifts, and a mixed grid.
func shockKinds(t *testing.T) map[string][]Shock {
	t.Helper()
	kinds := map[string]GridSpec{
		"spot-bumps":  {Spot: Axis{From: 0.7, To: 1.3, N: 7}},
		"vol-bumps":   {Vol: Axis{From: 0.8, To: 1.4, N: 5}},
		"rate-shifts": {Rate: Axis{From: -0.02, To: 0.02, N: 5}},
		"mixed-grid":  {Spot: Axis{From: 0.9, To: 1.1, N: 3}, Vol: Axis{From: 0.9, To: 1.1, N: 3}, Rate: Axis{From: -0.01, To: 0.01, N: 3}},
	}
	out := make(map[string][]Shock, len(kinds))
	for name, g := range kinds {
		shocks, err := g.Shocks()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = shocks
	}
	return out
}

func TestGridExpansion(t *testing.T) {
	g := GridSpec{
		Spot: Axis{From: 0.8, To: 1.2, N: 5},
		Vol:  Axis{From: 0.9, To: 1.1, N: 3},
		Rate: Axis{From: -0.01, To: 0.01, N: 2},
	}
	shocks, err := g.Shocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(shocks) != 5*3*2 {
		t.Fatalf("got %d shocks, want 30", len(shocks))
	}
	// Deterministic order: rate fastest, spot slowest.
	if shocks[0].SpotMul != 0.8 || shocks[0].RateAdd != -0.01 {
		t.Errorf("first shock %+v", shocks[0])
	}
	if shocks[1].RateAdd != 0.01 || shocks[1].SpotMul != 0.8 {
		t.Errorf("second shock %+v", shocks[1])
	}
	last := shocks[len(shocks)-1]
	if last.SpotMul != 1.2 || last.VolMul != 1.1 || last.RateAdd != 0.01 {
		t.Errorf("last shock %+v", last)
	}
	for _, s := range shocks {
		if s.Label == "" {
			t.Fatalf("generated shock missing label: %+v", s)
		}
	}
}

func TestGridValidation(t *testing.T) {
	cases := map[string]GridSpec{
		"negative-spot": {Spot: Axis{From: -0.5, To: 1, N: 3}},
		"zero-vol":      {Vol: Axis{From: 0, To: 1, N: 2}},
		"nan-rate":      {Rate: Axis{From: math.NaN(), To: 0.01, N: 2}},
		"negative-n":    {Spot: Axis{From: 1, To: 1, N: -1}},
		"grid-blowup":   {Spot: Axis{From: 0.9, To: 1.1, N: 2048}, Vol: Axis{From: 0.9, To: 1.1, N: 2048}},
	}
	for name, g := range cases {
		if _, err := g.Shocks(); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestRevalueBitIdenticalToSerialReference is the scenario correctness
// pin: every per-scenario value must equal, bit for bit, a serial
// single-option revaluation of the shocked contracts through the scalar
// reference engine — across rights, styles and all shock kinds.
func TestRevalueBitIdenticalToSerialReference(t *testing.T) {
	const steps = 64
	le := mustEngine(t, steps)
	book := testBook(23)
	for name, shocks := range shockKinds(t) {
		rep, err := New(le, 2).Revalue(Request{Book: book, Shocks: shocks})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Scenarios) != len(shocks) {
			t.Fatalf("%s: got %d scenarios, want %d", name, len(rep.Scenarios), len(shocks))
		}
		// Serial reference: one scalar pricing per shocked contract, in
		// the same accumulation order.
		var base float64
		for _, pos := range book {
			v, err := le.Price(pos.Option)
			if err != nil {
				t.Fatal(err)
			}
			base += pos.Quantity * v
		}
		if rep.BaseValue != base {
			t.Fatalf("%s: base value %v != serial %v", name, rep.BaseValue, base)
		}
		for s, shock := range shocks {
			var want float64
			for _, pos := range book {
				v, err := le.Price(shock.Apply(pos.Option))
				if err != nil {
					t.Fatal(err)
				}
				want += pos.Quantity * v
			}
			if rep.Scenarios[s].Value != want {
				t.Fatalf("%s scenario %d (%s): %v != serial %v",
					name, s, rep.Scenarios[s].Label, rep.Scenarios[s].Value, want)
			}
			if rep.Scenarios[s].PnL != rep.Scenarios[s].Value-base {
				t.Fatalf("%s scenario %d: pnl mismatch", name, s)
			}
		}
	}
}

// TestRevalueChunkingInvariant pins that the micro-batch chunk size
// never changes the numbers, only the submission pattern.
func TestRevalueChunkingInvariant(t *testing.T) {
	le := mustEngine(t, 48)
	book := testBook(9)
	shocks, err := GridSpec{Spot: Axis{From: 0.85, To: 1.15, N: 11}}.Shocks()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(le, 1).Revalue(Request{Book: book, Shocks: shocks})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 100, 1 << 20} {
		rep, err := New(le, 3).WithChunk(chunk).Revalue(Request{Book: book, Shocks: shocks})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if rep.BaseValue != ref.BaseValue {
			t.Fatalf("chunk=%d: base diverged", chunk)
		}
		for s := range ref.Scenarios {
			if rep.Scenarios[s] != ref.Scenarios[s] {
				t.Fatalf("chunk=%d scenario %d: %+v != %+v", chunk, s, rep.Scenarios[s], ref.Scenarios[s])
			}
		}
		if len(rep.Risk) != len(ref.Risk) {
			t.Fatalf("chunk=%d: risk length diverged", chunk)
		}
		for i := range ref.Risk {
			if rep.Risk[i] != ref.Risk[i] {
				t.Fatalf("chunk=%d risk %d: %+v != %+v", chunk, i, rep.Risk[i], ref.Risk[i])
			}
		}
	}
}

// TestRevalueGreeks pins the net-Greeks pass against the quad-batched
// Greeks reference and the SkipGreeks switch.
func TestRevalueGreeks(t *testing.T) {
	le := mustEngine(t, 64)
	book := testBook(11)
	shocks, _ := GridSpec{Spot: Axis{From: 0.9, To: 1.1, N: 3}}.Shocks()

	rep, err := New(le, 2).Revalue(Request{Book: book, Shocks: shocks})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasGreeks {
		t.Fatal("lattice engine offers the Greeks path; report should carry net Greeks")
	}
	opts := make([]option.Option, len(book))
	for i, pos := range book {
		opts[i] = pos.Option
	}
	_, gs, err := le.PriceAndGreeksBatch(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantDelta float64
	for i, pos := range book {
		wantDelta += pos.Quantity * gs[i].Delta
	}
	if rep.Greeks.Delta != wantDelta {
		t.Errorf("net delta %v != %v", rep.Greeks.Delta, wantDelta)
	}

	skipped, err := New(le, 2).Revalue(Request{Book: book, Shocks: shocks, SkipGreeks: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped.HasGreeks || skipped.Greeks != (lattice.Greeks{}) {
		t.Error("SkipGreeks should suppress the Greeks pass")
	}
	if skipped.BaseValue != rep.BaseValue {
		t.Error("SkipGreeks changed the base value")
	}
	for s := range rep.Scenarios {
		if skipped.Scenarios[s] != rep.Scenarios[s] {
			t.Fatalf("SkipGreeks changed scenario %d", s)
		}
	}
}

// TestRevalueEmptyBook pins the zero-report convention shared with
// ValuePortfolio: an empty book is a valid request.
func TestRevalueEmptyBook(t *testing.T) {
	le := mustEngine(t, 16)
	shocks, _ := GridSpec{Spot: Axis{From: 0.9, To: 1.1, N: 3}}.Shocks()
	rep, err := New(le, 1).Revalue(Request{Book: nil, Shocks: shocks})
	if err != nil {
		t.Fatalf("empty book should revalue to zero, got: %v", err)
	}
	if rep.BaseValue != 0 || rep.Evaluations != 0 || rep.HasGreeks {
		t.Errorf("empty book report not zero: %+v", rep)
	}
	if len(rep.Scenarios) != len(shocks) {
		t.Fatalf("scenario entries should survive an empty book")
	}
	for _, sv := range rep.Scenarios {
		if sv.Value != 0 || sv.PnL != 0 {
			t.Errorf("empty book scenario %+v not zero", sv)
		}
	}
	for _, r := range rep.Risk {
		if r.VaR != 0 || r.ES != 0 {
			t.Errorf("empty book risk %+v not zero", r)
		}
	}
}

func TestRevalueRejectsBadInput(t *testing.T) {
	le := mustEngine(t, 16)
	book := testBook(3)
	good := []Shock{{SpotMul: 1, VolMul: 1}}
	if _, err := New(le, 1).Revalue(Request{Book: book, Shocks: []Shock{{SpotMul: -1, VolMul: 1}}}); err == nil {
		t.Error("negative spot multiplier should fail")
	}
	if _, err := New(le, 1).Revalue(Request{Book: book, Shocks: good, Quantiles: []float64{1.5}}); err == nil {
		t.Error("confidence outside (0,1) should fail")
	}
	bad := testBook(3)
	bad[1].Option.Sigma = -1
	_, err := New(le, 1).Revalue(Request{Book: bad, Shocks: good})
	if err == nil {
		t.Fatal("invalid contract should fail")
	}
	if !strings.Contains(err.Error(), "scenario") {
		t.Errorf("error should carry scenario context: %v", err)
	}
}

func TestRiskMeasures(t *testing.T) {
	// Ten scenarios, P&L -10..-1 reversed into unsorted order.
	pnl := []float64{-3, -7, -1, -9, -5, -10, -2, -8, -4, -6}
	ms, err := RiskMeasures(pnl, []float64{0.95, 0.90, 0.50})
	if err != nil {
		t.Fatal(err)
	}
	// 95%: ceil(0.05*10)=1 tail scenario → VaR = ES = 10.
	if ms[0].VaR != 10 || ms[0].ES != 10 {
		t.Errorf("95%%: %+v", ms[0])
	}
	// 90%: ceil(0.1*10)=1 → worst scenario again.
	if ms[1].VaR != 10 {
		t.Errorf("90%%: %+v", ms[1])
	}
	// 50%: 5 tail scenarios {-10..-6} → VaR 6, ES 8.
	if ms[2].VaR != 6 || ms[2].ES != 8 {
		t.Errorf("50%%: %+v", ms[2])
	}
	if _, err := RiskMeasures(pnl, []float64{0}); err == nil {
		t.Error("confidence 0 should fail")
	}
	empty, err := RiskMeasures(nil, []float64{0.99})
	if err != nil || empty[0].VaR != 0 {
		t.Errorf("empty pnl: %+v, %v", empty, err)
	}
}

// TestLongBookLosesOnSpotDown sanity-checks the sign conventions the
// smoke test's nonzero-VaR assertion relies on: a net-long book of puts
// gains when spot falls, so VaR at high confidence reflects the
// spot-up tail; either way the measures are nonzero under wide spot
// shocks.
func TestLongBookLosesOnSpotDown(t *testing.T) {
	le := mustEngine(t, 64)
	o := option.Option{Right: option.Call, Style: option.European, Spot: 100, Strike: 100, Rate: 0.02, Sigma: 0.2, T: 1}
	book := []Position{{Option: o, Quantity: 100}}
	shocks, _ := GridSpec{Spot: Axis{From: 0.7, To: 1.3, N: 13}}.Shocks()
	rep, err := New(le, 2).Revalue(Request{Book: book, Shocks: shocks, Quantiles: []float64{0.9}})
	if err != nil {
		t.Fatal(err)
	}
	// Long calls lose when spot drops: the worst scenario is spot*0.7.
	if rep.Risk[0].VaR <= 0 {
		t.Errorf("long-call book under spot-down shocks must show positive VaR, got %+v", rep.Risk[0])
	}
	if rep.Risk[0].ES < rep.Risk[0].VaR {
		t.Errorf("ES %v < VaR %v", rep.Risk[0].ES, rep.Risk[0].VaR)
	}
}
