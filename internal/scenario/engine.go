package scenario

import (
	"fmt"

	"binopt/internal/lattice"
	"binopt/internal/option"
)

// Pricer prices contract batches bit-identically to the scalar
// reference. *lattice.Engine and *accel.Engine both satisfy it; the
// serving tier hands the engine an accelerator so every revaluation
// rides the quad-interleaved batch path with its joules booked.
type Pricer interface {
	PriceBatch(opts []option.Option, workers int) ([]float64, error)
	Steps() int
}

// GreeksPricer additionally prices with full sensitivities through the
// quad-batched Greeks path. When the engine's Pricer implements it, a
// revaluation report carries the book's net Greeks.
type GreeksPricer interface {
	Pricer
	PriceAndGreeksBatch(opts []option.Option, workers int) ([]float64, []lattice.Greeks, error)
}

// Position is a signed holding of one contract (negative quantity =
// short).
type Position struct {
	Option   option.Option
	Quantity float64
}

// Request is one revaluation: a book, the shocked market states to
// revalue it under, and the confidence levels for the risk measures.
type Request struct {
	Book      []Position
	Shocks    []Shock
	Quantiles []float64 // confidence levels in (0,1); nil = DefaultQuantiles
	// SkipGreeks suppresses the net-Greeks pass. The fleet router sets
	// it on all but one shard so the book's sensitivities are computed
	// exactly once per request.
	SkipGreeks bool
}

// DefaultQuantiles are the confidence levels a request gets when it
// names none.
var DefaultQuantiles = []float64{0.95, 0.99}

// ScenarioValue is one scenario's revaluation of the book.
type ScenarioValue struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
	PnL   float64 `json:"pnl"`
}

// Report is the aggregated revaluation: base value, net Greeks,
// per-scenario values and P&L, and the risk quantiles over the P&L
// distribution. Evaluations counts contract evaluations on the pricing
// substrate (a Greeks position books its five sweeps).
type Report struct {
	BaseValue   float64         `json:"base_value"`
	Greeks      lattice.Greeks  `json:"greeks"`
	HasGreeks   bool            `json:"has_greeks"`
	Scenarios   []ScenarioValue `json:"scenarios"`
	Risk        []RiskMeasure   `json:"risk"`
	Evaluations int64           `json:"evaluations"`
}

// defaultChunk bounds one PriceBatch submission: scenarios are expanded
// and priced in micro-batches of about this many contracts, so a
// million-evaluation request streams through bounded scratch at
// production batch sizes instead of materialising the whole cross
// product.
const defaultChunk = 4096

// Engine revalues portfolios under scenario sets. It holds no state
// between calls and is safe for concurrent use as long as its Pricer
// is.
type Engine struct {
	pricer  Pricer
	workers int
	chunk   int
}

// New builds a revaluation engine over the pricer. workers bounds each
// batch submission's parallelism (<= 0 uses the pricer's default).
func New(p Pricer, workers int) *Engine {
	return &Engine{pricer: p, workers: workers, chunk: defaultChunk}
}

// WithChunk overrides the per-submission contract budget (testing and
// tuning hook).
func (e *Engine) WithChunk(contracts int) *Engine {
	c := *e
	if contracts > 0 {
		c.chunk = contracts
	}
	return &c
}

// Revalue expands book × shocks, prices every shocked contract through
// the batch path, and aggregates the report. An empty book is a valid
// request and values to the zero report — every scenario prices to
// zero P&L — matching ValuePortfolio's empty-book convention. Every
// per-scenario value is bit-identical to revaluing that scenario's
// contracts one at a time through the scalar reference, so reports are
// reproducible across solo, sharded and serial execution.
func (e *Engine) Revalue(req Request) (Report, error) {
	for i, s := range req.Shocks {
		if err := s.Validate(); err != nil {
			return Report{}, fmt.Errorf("shock %d: %w", i, err)
		}
	}
	quantiles := req.Quantiles
	if len(quantiles) == 0 {
		quantiles = DefaultQuantiles
	}

	rep := Report{Scenarios: make([]ScenarioValue, len(req.Shocks))}
	for i, s := range req.Shocks {
		label := s.Label
		if label == "" {
			label = s.defaultLabel()
		}
		rep.Scenarios[i] = ScenarioValue{Label: label}
	}

	if len(req.Book) > 0 {
		if err := e.revalueBook(req, &rep); err != nil {
			return Report{}, err
		}
	}

	pnl := make([]float64, len(rep.Scenarios))
	for i := range rep.Scenarios {
		rep.Scenarios[i].PnL = rep.Scenarios[i].Value - rep.BaseValue
		pnl[i] = rep.Scenarios[i].PnL
	}
	risk, err := RiskMeasures(pnl, quantiles)
	if err != nil {
		return Report{}, err
	}
	rep.Risk = risk
	return rep, nil
}

// revalueBook prices the base book (with Greeks when the substrate
// offers them) and then the scenario cross product in contract chunks.
func (e *Engine) revalueBook(req Request, rep *Report) error {
	book := req.Book
	baseOpts := make([]option.Option, len(book))
	for i, pos := range book {
		baseOpts[i] = pos.Option
	}

	gp, hasGreeks := e.pricer.(GreeksPricer)
	if hasGreeks && !req.SkipGreeks {
		prices, greeks, err := gp.PriceAndGreeksBatch(baseOpts, e.workers)
		if err != nil {
			return fmt.Errorf("scenario: base book: %w", err)
		}
		for i, pos := range book {
			q := pos.Quantity
			rep.BaseValue += q * prices[i]
			rep.Greeks.Delta += q * greeks[i].Delta
			rep.Greeks.Gamma += q * greeks[i].Gamma
			rep.Greeks.Theta += q * greeks[i].Theta
			rep.Greeks.Vega += q * greeks[i].Vega
			rep.Greeks.Rho += q * greeks[i].Rho
		}
		rep.HasGreeks = true
		rep.Evaluations += 5 * int64(len(book))
	} else {
		prices, err := e.pricer.PriceBatch(baseOpts, e.workers)
		if err != nil {
			return fmt.Errorf("scenario: base book: %w", err)
		}
		for i, pos := range book {
			rep.BaseValue += pos.Quantity * prices[i]
		}
		rep.Evaluations += int64(len(book))
	}

	// Scenario expansion, scenario-major so one scenario's contracts are
	// contiguous in the batch: perCall scenarios per submission keeps
	// each PriceBatch near the chunk budget.
	perCall := e.chunk / len(book)
	if perCall < 1 {
		perCall = 1
	}
	opts := make([]option.Option, 0, perCall*len(book))
	for s0 := 0; s0 < len(req.Shocks); s0 += perCall {
		s1 := s0 + perCall
		if s1 > len(req.Shocks) {
			s1 = len(req.Shocks)
		}
		opts = opts[:0]
		for s := s0; s < s1; s++ {
			shock := req.Shocks[s]
			for _, pos := range book {
				opts = append(opts, shock.Apply(pos.Option))
			}
		}
		prices, err := e.pricer.PriceBatch(opts, e.workers)
		if err != nil {
			return fmt.Errorf("scenario: scenarios [%d,%d): %w", s0, s1, err)
		}
		for s := s0; s < s1; s++ {
			var v float64
			row := prices[(s-s0)*len(book):]
			for i, pos := range book {
				v += pos.Quantity * row[i]
			}
			rep.Scenarios[s].Value = v
		}
		rep.Evaluations += int64(len(opts))
	}
	return nil
}
