// Package scenario is the market-risk revaluation engine: it expands a
// portfolio under a set of shocked market states, drives the resulting
// contract batches through the quad-interleaved pricing path, and
// aggregates per-scenario P&L, net Greeks and VaR/ES quantiles. This is
// the workload the data-centre-FPGA economics are built on — one
// request fanning out to 10⁴–10⁶ lattice evaluations at production
// batch sizes — and every shocked price is bit-identical to pricing the
// shocked contract alone through the scalar reference, so a scenario
// run solo, sharded across a fleet, or recomputed serially always
// agrees to the last bit.
package scenario

import (
	"fmt"
	"math"

	"binopt/internal/option"
)

// Shock is one scenario's perturbation of the market state: a
// multiplicative bump to every position's spot and volatility and a
// parallel additive shift of the risk-free rate — the three axes
// desk-side stress grids are built from. The identity shock is
// {SpotMul: 1, VolMul: 1, RateAdd: 0}.
type Shock struct {
	Label   string  `json:"label,omitempty"`
	SpotMul float64 `json:"spot_mul"`
	VolMul  float64 `json:"vol_mul"`
	RateAdd float64 `json:"rate_add"`
}

// Identity is the unshocked market state.
func Identity() Shock { return Shock{Label: "base", SpotMul: 1, VolMul: 1} }

// Apply returns the contract revalued under this shock. The three
// float64 operations are fixed (multiply, multiply, add), so a shocked
// contract — and therefore its lattice price — is a deterministic
// function of (contract, shock) alone.
func (s Shock) Apply(o option.Option) option.Option {
	o.Spot *= s.SpotMul
	o.Sigma *= s.VolMul
	o.Rate += s.RateAdd
	return o
}

// Validate rejects shocks that cannot produce a priceable contract.
func (s Shock) Validate() error {
	switch {
	case !(s.SpotMul > 0) || math.IsInf(s.SpotMul, 0):
		return fmt.Errorf("scenario: spot multiplier must be positive and finite, got %v", s.SpotMul)
	case !(s.VolMul > 0) || math.IsInf(s.VolMul, 0):
		return fmt.Errorf("scenario: vol multiplier must be positive and finite, got %v", s.VolMul)
	case math.IsNaN(s.RateAdd) || math.IsInf(s.RateAdd, 0):
		return fmt.Errorf("scenario: rate shift must be finite, got %v", s.RateAdd)
	}
	return nil
}

// Key is the shock's canonical identity: the exact bit patterns of its
// three perturbations. The serving tier builds cache keys from it and
// the fleet router hashes it onto the ring, so two shocks that round to
// the same bits are the same scenario everywhere.
func (s Shock) Key() string {
	return fmt.Sprintf("%016x.%016x.%016x",
		math.Float64bits(s.SpotMul), math.Float64bits(s.VolMul), math.Float64bits(s.RateAdd))
}

// defaultLabel names a generated shock for reports.
func (s Shock) defaultLabel() string {
	return fmt.Sprintf("spot*%g|vol*%g|rate%+g", s.SpotMul, s.VolMul, s.RateAdd)
}

// Axis is one dimension of a scenario grid: N values evenly spaced over
// [From, To]. The zero Axis contributes the dimension's identity (a
// single unshocked point). How the values perturb the market is fixed
// per dimension by GridSpec: spot and vol multiplicatively, rate as a
// parallel additive shift.
type Axis struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	N    int     `json:"n"`
}

// values expands the axis; identity is the value of an unused axis.
func (a Axis) values(identity float64) []float64 {
	if a.N <= 0 {
		return []float64{identity}
	}
	if a.N == 1 {
		return []float64{a.From}
	}
	vs := make([]float64, a.N)
	step := (a.To - a.From) / float64(a.N-1)
	for i := range vs {
		vs[i] = a.From + step*float64(i)
	}
	return vs
}

func (a Axis) validate(name string, mustBePositive bool) error {
	if a.N < 0 {
		return fmt.Errorf("scenario: %s axis count must be >= 0, got %d", name, a.N)
	}
	if a.N == 0 {
		return nil
	}
	for _, v := range []float64{a.From, a.To} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: %s axis bounds must be finite", name)
		}
		if mustBePositive && v <= 0 {
			return fmt.Errorf("scenario: %s axis values must be positive, got %v", name, v)
		}
	}
	return nil
}

// MaxGridScenarios caps a grid expansion; beyond it the request is a
// client error, not a server commitment.
const MaxGridScenarios = 1 << 20

// GridSpec is the small grid mode: the cross product of a
// multiplicative spot axis, a multiplicative vol axis and an additive
// rate axis. Unused axes contribute their identity, so a pure parallel
// rate-shift ladder is a grid with only the rate axis set, and a spot
// bump ladder only the spot axis.
type GridSpec struct {
	Spot Axis `json:"spot"`
	Vol  Axis `json:"vol"`
	Rate Axis `json:"rate"`
}

// Shocks expands the grid in deterministic order — rate fastest, then
// vol, then spot — with generated labels.
func (g GridSpec) Shocks() ([]Shock, error) {
	if err := g.Spot.validate("spot", true); err != nil {
		return nil, err
	}
	if err := g.Vol.validate("vol", true); err != nil {
		return nil, err
	}
	if err := g.Rate.validate("rate", false); err != nil {
		return nil, err
	}
	spots := g.Spot.values(1)
	vols := g.Vol.values(1)
	rates := g.Rate.values(0)
	total := len(spots) * len(vols) * len(rates)
	if total > MaxGridScenarios {
		return nil, fmt.Errorf("scenario: grid expands to %d scenarios, cap is %d", total, MaxGridScenarios)
	}
	shocks := make([]Shock, 0, total)
	for _, sm := range spots {
		for _, vm := range vols {
			for _, ra := range rates {
				s := Shock{SpotMul: sm, VolMul: vm, RateAdd: ra}
				if err := s.Validate(); err != nil {
					return nil, err
				}
				s.Label = s.defaultLabel()
				shocks = append(shocks, s)
			}
		}
	}
	return shocks, nil
}
