// Package linalg provides the small dense linear-algebra kernels the
// Longstaff–Schwartz regression needs: normal-equations assembly and a
// Cholesky solve with ridge fallback for rank-deficient designs. Sizes
// are tiny (basis dimension <= ~6), so clarity beats blocking.
package linalg

import (
	"fmt"
	"math"
)

// Cholesky factors the symmetric positive-definite matrix a (given as
// row-major n x n) in place into L with a*x: a = L L^T, returning an error
// when the matrix is not positive definite. Only the lower triangle is
// referenced and written.
func Cholesky(a [][]float64) error {
	n := len(a)
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			return fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= a[i][k] * a[j][k]
			}
			if i == j {
				if sum <= 0 {
					return fmt.Errorf("linalg: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				a[i][i] = math.Sqrt(sum)
			} else {
				a[i][j] = sum / a[j][j]
			}
		}
	}
	return nil
}

// CholeskySolve solves L L^T x = b given the Cholesky factor L (as
// produced by Cholesky, lower triangle), writing the solution over b.
func CholeskySolve(l [][]float64, b []float64) error {
	n := len(l)
	if len(b) != n {
		return fmt.Errorf("linalg: rhs has %d entries, want %d", len(b), n)
	}
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * b[k]
		}
		b[i] = sum / l[i][i]
	}
	// Back substitution L^T x = y.
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * b[k]
		}
		b[i] = sum / l[i][i]
	}
	return nil
}

// LeastSquares solves min ||X beta - y||_2 by normal equations with
// Cholesky, retrying with a small ridge term when the Gram matrix is
// numerically singular (collinear basis columns happen when few paths
// are in the money). X is row-major with one row per observation.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 {
		return nil, fmt.Errorf("linalg: no observations")
	}
	if len(y) != m {
		return nil, fmt.Errorf("linalg: %d observations but %d targets", m, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, fmt.Errorf("linalg: empty design row")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("linalg: ragged design matrix at row %d", i)
		}
	}

	gram := make([][]float64, p)
	for i := range gram {
		gram[i] = make([]float64, p)
	}
	rhs := make([]float64, p)
	for r := 0; r < m; r++ {
		row := x[r]
		for i := 0; i < p; i++ {
			for j := 0; j <= i; j++ {
				gram[i][j] += row[i] * row[j]
			}
			rhs[i] += row[i] * y[r]
		}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			gram[i][j] = gram[j][i]
		}
	}

	// Try plain Cholesky, then escalating ridge regularisation.
	for _, ridge := range []float64{0, 1e-10, 1e-6, 1e-2} {
		g := make([][]float64, p)
		for i := range g {
			g[i] = append([]float64(nil), gram[i]...)
			g[i][i] += ridge * (1 + gram[i][i])
		}
		b := append([]float64(nil), rhs...)
		if err := Cholesky(g); err != nil {
			continue
		}
		if err := CholeskySolve(g, b); err != nil {
			continue
		}
		return b, nil
	}
	return nil, fmt.Errorf("linalg: normal equations unsolvable even with ridge")
}
