package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := [][]float64{{4, 2}, {2, 3}}
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][0] != 1 || math.Abs(a[1][1]-math.Sqrt2) > 1e-15 {
		t.Errorf("factor: %v", a)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if err := Cholesky(a); err == nil {
		t.Error("indefinite matrix should fail")
	}
	ragged := [][]float64{{1, 2}, {2}}
	if err := Cholesky(ragged); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	a := [][]float64{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}}
	orig := [][]float64{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}}
	xTrue := []float64{1, -2, 3}
	b := make([]float64, 3)
	for i := range b {
		for j := range xTrue {
			b[i] += orig[i][j] * xTrue[j]
		}
	}
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if err := CholeskySolve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(b[i]-xTrue[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, b[i], xTrue[i])
		}
	}
}

func TestCholeskySolveSizeMismatch(t *testing.T) {
	a := [][]float64{{4, 0}, {0, 4}}
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if err := CholeskySolve(a, []float64{1}); err == nil {
		t.Error("rhs size mismatch should fail")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3x fitted through noiseless points.
	var x [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		xi := float64(i)
		x = append(x, []float64{1, xi})
		y = append(y, 2+3*xi)
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-10 || math.Abs(beta[1]-3) > 1e-10 {
		t.Errorf("beta = %v", beta)
	}
}

func TestLeastSquaresOverdeterminedResidual(t *testing.T) {
	// Fitting a constant to {0, 1} must return the mean 0.5.
	x := [][]float64{{1}, {1}}
	y := []float64{0, 1}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-0.5) > 1e-12 {
		t.Errorf("beta = %v, want [0.5]", beta)
	}
}

func TestLeastSquaresCollinearFallsBackToRidge(t *testing.T) {
	// Duplicate columns: singular Gram matrix, ridge must save it.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{2, 4, 6}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Any beta with beta0+beta1 ~ 2 fits; check the prediction.
	pred := beta[0] + beta[1]
	if math.Abs(pred-2) > 1e-3 {
		t.Errorf("prediction per unit = %v, want ~2 (beta %v)", pred, beta)
	}
}

func TestLeastSquaresValidation(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty design should fail")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched sizes should fail")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("empty rows should fail")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged design should fail")
	}
}

func TestLeastSquaresRecoversRandomLinearModel(t *testing.T) {
	f := func(rawA, rawB float64) bool {
		a := math.Mod(rawA, 50)
		b := math.Mod(rawB, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		var x [][]float64
		var y []float64
		for i := -5; i <= 5; i++ {
			xi := float64(i)
			x = append(x, []float64{1, xi})
			y = append(y, a+b*xi)
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return false
		}
		return math.Abs(beta[0]-a) < 1e-8*(1+math.Abs(a)) &&
			math.Abs(beta[1]-b) < 1e-8*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
