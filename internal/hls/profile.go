package hls

import "fmt"

// KernelProfile is the datapath description of one OpenCL kernel, the
// input the compiler model works from. Counts are per work-item; for
// kernels with an inner loop, BodyOps counts one loop iteration and
// SetupOps the one-time prologue (leaf initialisation in kernel IV.B).
type KernelProfile struct {
	Name string

	// BodyOps are the operators of the pipelined region executed
	// LoopTrips times per work-item (LoopTrips = 1 for straight-line
	// kernels such as IV.A).
	BodyOps map[OpKind]int
	// SetupOps are executed once per work-item before the loop.
	SetupOps map[OpKind]int
	// LoopTrips is the nominal inner-loop trip count (the tree depth N
	// for kernel IV.B).
	LoopTrips int

	// GlobalLoadSites and GlobalStoreSites count the distinct global
	// memory access sites; each becomes a load/store unit.
	GlobalLoadSites  int
	GlobalStoreSites int

	// LocalBytes is the per-work-group local-memory footprint;
	// LocalReadPorts/LocalWritePorts the per-lane concurrent accesses.
	LocalBytes      int64
	LocalReadPorts  int
	LocalWritePorts int

	// Barriers is the number of barrier sites in the kernel body.
	Barriers int
	// PrivateBytes is the live private state per work-item that a
	// barrier must spill (sizes the barrier buffers).
	PrivateBytes int
}

// Validate rejects structurally impossible profiles.
func (p KernelProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("hls: profile needs a name")
	case p.LoopTrips < 1:
		return fmt.Errorf("hls: profile %q: LoopTrips must be >= 1, got %d", p.Name, p.LoopTrips)
	case p.GlobalLoadSites < 0 || p.GlobalStoreSites < 0:
		return fmt.Errorf("hls: profile %q: negative access sites", p.Name)
	case p.LocalBytes < 0 || p.PrivateBytes < 0:
		return fmt.Errorf("hls: profile %q: negative memory sizes", p.Name)
	case p.Barriers > 0 && p.LocalBytes == 0:
		return fmt.Errorf("hls: profile %q: barriers without local memory", p.Name)
	}
	for k, n := range p.BodyOps {
		if k < 0 || int(k) >= numOpKinds || n < 0 {
			return fmt.Errorf("hls: profile %q: bad body op %v x%d", p.Name, k, n)
		}
	}
	for k, n := range p.SetupOps {
		if k < 0 || int(k) >= numOpKinds || n < 0 {
			return fmt.Errorf("hls: profile %q: bad setup op %v x%d", p.Name, k, n)
		}
	}
	return nil
}

// Knobs are the three parallelisation options of §V-B. Vectorize is the
// SIMD width pragma (num_simd_work_items), Replicate the compute-unit
// replication (num_compute_units), Unroll the inner-loop unroll factor.
type Knobs struct {
	Vectorize int
	Replicate int
	Unroll    int
}

// Validate enforces the compiler's constraints: vectorization "can only
// be done by powers of two" (§V-B); all knobs at least 1.
func (k Knobs) Validate() error {
	if k.Vectorize < 1 || k.Vectorize&(k.Vectorize-1) != 0 {
		return fmt.Errorf("hls: vectorize must be a power of two >= 1, got %d", k.Vectorize)
	}
	if k.Replicate < 1 {
		return fmt.Errorf("hls: replicate must be >= 1, got %d", k.Replicate)
	}
	if k.Unroll < 1 {
		return fmt.Errorf("hls: unroll must be >= 1, got %d", k.Unroll)
	}
	return nil
}

// Lanes returns the number of loop-body datapath copies the knobs
// instantiate — the steady-state node updates per clock at II=1.
func (k Knobs) Lanes() int { return k.Vectorize * k.Replicate * k.Unroll }

// String renders the knobs the way the paper describes them.
func (k Knobs) String() string {
	return fmt.Sprintf("vec%d repl%d unroll%d", k.Vectorize, k.Replicate, k.Unroll)
}
