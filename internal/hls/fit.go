package hls

import (
	"fmt"
	"math"

	"binopt/internal/device"
)

// FitReport is the compiler model's analogue of the Quartus II Fitter
// Summary plus quartus_pow, i.e. one column of the paper's Table I,
// extended with the throughput figures the performance models need.
type FitReport struct {
	Kernel string
	Knobs  Knobs

	// Breakdown attributes the area to the compiler's structural
	// categories (datapath, LSUs, local memory, barriers, control,
	// infrastructure); entries sum to the report totals.
	Breakdown []CategoryUsage

	ALUTs      int
	Registers  int
	MemoryBits int64
	M9K        int
	M144K      int
	DSP18      int

	LogicUtilPct float64 // ALUT-based logic utilisation, percent
	FmaxMHz      float64
	PowerWatts   float64

	// NodeLanes is the number of loop-body results produced per clock at
	// steady state (vectorize * replicate * unroll at II=1).
	NodeLanes int
	// PipelineDepthCyc is the latency of one trip through the datapath,
	// which sets the fill/drain cost the saturation study measures.
	PipelineDepthCyc int
}

// CategoryUsage is one structural category's share of the fitted area.
type CategoryUsage struct {
	Name      string
	ALUTs     int
	Registers int
	M9K       int
	DSP18     int
}

// Fit runs the compiler model: area aggregation, fitter utilisation,
// Fmax estimation and the power estimate, for the given kernel profile
// and parallelisation knobs on the given board. It returns an error if
// the design does not fit the chip.
func Fit(board device.FPGABoard, p KernelProfile, k Knobs) (FitReport, error) {
	if err := p.Validate(); err != nil {
		return FitReport{}, err
	}
	if err := k.Validate(); err != nil {
		return FitReport{}, err
	}
	chip := board.Chip

	bodyCopies := k.Lanes()                  // loop body instances
	setupCopies := k.Vectorize * k.Replicate // prologue is not unrolled
	widthF := 1 + 0.5*float64(k.Vectorize-1) // LSU widening with SIMD

	r := FitReport{
		Kernel:    p.Name,
		Knobs:     k,
		NodeLanes: bodyCopies,
	}
	add := func(name string, aluts, regs, m9k, dsp int) {
		r.ALUTs += aluts
		r.Registers += regs
		r.M9K += m9k
		r.DSP18 += dsp
		r.Breakdown = append(r.Breakdown, CategoryUsage{
			Name: name, ALUTs: aluts, Registers: regs, M9K: m9k, DSP18: dsp,
		})
	}

	// Fixed board infrastructure.
	add("infrastructure", infraALUTs, infraRegs, infraM9K, 0)
	r.MemoryBits = infraBits

	// Datapath operators.
	sumOps := func(ops map[OpKind]int, copies int) (aluts, regs, m9k, dsp int) {
		for kind, n := range ops {
			c := stratixIVOps[kind]
			aluts += c.ALUTs * n * copies
			regs += c.Registers * n * copies
			dsp += c.DSP18 * n * copies
			m9k += c.M9K * n * copies
		}
		return aluts, regs, m9k, dsp
	}
	ba, brg, bm, bd := sumOps(p.BodyOps, bodyCopies)
	add("datapath (loop body)", ba, brg, bm, bd)
	sa, srg, sm, sd := sumOps(p.SetupOps, setupCopies)
	if sa+srg+sm+sd > 0 {
		add("datapath (setup)", sa, srg, sm, sd)
	}

	// Load/store units: one per access site per compute unit, widened by
	// vectorization.
	sites := p.GlobalLoadSites + p.GlobalStoreSites
	lsuScale := float64(sites*k.Replicate) * widthF
	add("load/store units",
		int(float64(lsuALUTs)*lsuScale),
		int(float64(lsuRegs)*lsuScale),
		int(float64(lsuM9K)*lsuScale),
		int(float64(lsuDSP)*lsuScale))

	// Per-lane control plumbing.
	add("lane control", laneCtrlALUTs*bodyCopies, laneCtrlRegs*bodyCopies,
		laneCtrlM9K*bodyCopies, laneCtrlDSP*bodyCopies)

	// Local memory banking: every concurrent accessor (read and write
	// ports across the SIMD/unroll lanes) gets a bank replica.
	if p.LocalBytes > 0 {
		banks := (p.LocalReadPorts + p.LocalWritePorts) * k.Vectorize * k.Unroll * k.Replicate
		m9kPerBank := int(math.Ceil(float64(p.LocalBytes*8) / float64(m9kBits)))
		add("local memory", localPortALUTs*banks, localPortRegs*banks, banks*m9kPerBank, 0)
	}

	// Barriers: live-state spill buffers sized by the maximum work-group
	// size, one set per barrier site per compute unit.
	if p.Barriers > 0 {
		stateBits := int64(barrierWGDepth) * int64(p.PrivateBytes) * 8
		m9kPerBarrier := int(math.Ceil(float64(stateBits) / float64(m9kBits)))
		add("barrier state", barrierCtrlALUTs*p.Barriers*k.Replicate,
			barrierCtrlRegs*p.Barriers*k.Replicate,
			p.Barriers*k.Replicate*m9kPerBarrier, 0)
	}

	// Memory bits: instantiated block RAM at its average fill.
	r.MemoryBits = int64(float64(r.M9K) * float64(m9kBits) * m9kFill)

	// Fitter feasibility.
	switch {
	case r.ALUTs > chip.ALUTs:
		return r, fmt.Errorf("hls: %s %v does not fit: %d ALUTs > %d", p.Name, k, r.ALUTs, chip.ALUTs)
	case r.Registers > chip.Registers:
		return r, fmt.Errorf("hls: %s %v does not fit: %d registers > %d", p.Name, k, r.Registers, chip.Registers)
	case r.M9K > chip.M9K:
		return r, fmt.Errorf("hls: %s %v does not fit: %d M9K > %d", p.Name, k, r.M9K, chip.M9K)
	case r.DSP18 > chip.DSP18:
		return r, fmt.Errorf("hls: %s %v does not fit: %d DSP > %d", p.Name, k, r.DSP18, chip.DSP18)
	}

	// Logic utilisation drives routability and therefore Fmax.
	util := float64(r.ALUTs) / float64(chip.ALUTs)
	r.LogicUtilPct = 100 * util
	r.FmaxMHz = chip.FmaxPeakMHz * (1 - chip.CongestionK*util*util)

	// quartus_pow analogue.
	weight := float64(r.Registers) + 40*float64(r.DSP18) + 200*float64(r.M9K)
	r.PowerWatts = chip.StaticWatts + chip.DynWattsPerWeightHz*weight*r.FmaxMHz*1e6

	// Pipeline depth: one trip through setup + body + memory system.
	depth := 0
	for kind, n := range p.BodyOps {
		depth += stratixIVOps[kind].LatencyCyc * n
	}
	for kind, n := range p.SetupOps {
		depth += stratixIVOps[kind].LatencyCyc * n
	}
	depth += sites * lsuLatencyCyc
	if p.Barriers > 0 {
		depth += p.Barriers * barrierWGDepth / bodyCopies
	}
	r.PipelineDepthCyc = depth
	return r, nil
}

const (
	laneCtrlDSP   = 4
	lsuLatencyCyc = 60
)

// String renders the report as one Table I style column.
func (r FitReport) String() string {
	return fmt.Sprintf(
		"%s [%v]: logic %.0f%%, %dK/%dK regs proxy, mem %dK bits, M9K %d, DSP %d, Fmax %.2f MHz, %.1f W, %d lanes",
		r.Kernel, r.Knobs, r.LogicUtilPct, r.Registers/1024, 415, r.MemoryBits/1024, r.M9K, r.DSP18,
		r.FmaxMHz, r.PowerWatts, r.NodeLanes)
}
