package hls

import (
	"strings"
	"testing"
	"testing/quick"

	"binopt/internal/device"
)

// simpleProfile is a small synthetic kernel for structural tests.
func simpleProfile() KernelProfile {
	return KernelProfile{
		Name: "synthetic",
		BodyOps: map[OpKind]int{
			DPMul:    2,
			DPAddSub: 1,
			DPMax:    1,
			IntALU:   2,
		},
		LoopTrips:        64,
		GlobalLoadSites:  2,
		GlobalStoreSites: 1,
		PrivateBytes:     32,
	}
}

func TestFitValidation(t *testing.T) {
	board := device.DE4()
	good := simpleProfile()
	if _, err := Fit(board, good, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1}); err != nil {
		t.Fatalf("baseline fit failed: %v", err)
	}

	bad := good
	bad.Name = ""
	if _, err := Fit(board, bad, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1}); err == nil {
		t.Error("unnamed profile should fail")
	}
	bad = good
	bad.LoopTrips = 0
	if _, err := Fit(board, bad, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1}); err == nil {
		t.Error("zero trips should fail")
	}
	bad = good
	bad.Barriers = 1 // barriers without local memory
	if _, err := Fit(board, bad, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1}); err == nil {
		t.Error("barriers without local memory should fail")
	}
	bad = good
	bad.BodyOps = map[OpKind]int{DPMul: -1}
	if _, err := Fit(board, bad, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1}); err == nil {
		t.Error("negative op count should fail")
	}
}

func TestKnobValidation(t *testing.T) {
	for _, k := range []Knobs{
		{Vectorize: 3, Replicate: 1, Unroll: 1},
		{Vectorize: 0, Replicate: 1, Unroll: 1},
		{Vectorize: 1, Replicate: 0, Unroll: 1},
		{Vectorize: 1, Replicate: 1, Unroll: 0},
	} {
		if err := k.Validate(); err == nil {
			t.Errorf("knobs %+v should be invalid", k)
		}
	}
	for _, v := range []int{1, 2, 4, 8, 16} {
		k := Knobs{Vectorize: v, Replicate: 1, Unroll: 1}
		if err := k.Validate(); err != nil {
			t.Errorf("vectorize %d should be valid: %v", v, err)
		}
	}
	k := Knobs{Vectorize: 4, Replicate: 3, Unroll: 2}
	if k.Lanes() != 24 {
		t.Errorf("Lanes = %d", k.Lanes())
	}
	if s := k.String(); !strings.Contains(s, "vec4") || !strings.Contains(s, "repl3") {
		t.Errorf("String: %q", s)
	}
}

func TestAreaMonotoneInKnobs(t *testing.T) {
	// More parallelism must never shrink the design (the fitter
	// monotonicity property driving the paper's "several compilation
	// iterations" search).
	board := device.DE4()
	prof := simpleProfile()
	base, err := Fit(board, prof, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawV, rawR, rawU uint8) bool {
		k := Knobs{
			Vectorize: 1 << (rawV % 3),
			Replicate: 1 + int(rawR%3),
			Unroll:    1 + int(rawU%3),
		}
		rep, err := Fit(board, prof, k)
		if err != nil {
			return true // not fitting is acceptable for large knob values
		}
		return rep.ALUTs >= base.ALUTs &&
			rep.Registers >= base.Registers &&
			rep.DSP18 >= base.DSP18 &&
			rep.M9K >= base.M9K &&
			rep.NodeLanes >= base.NodeLanes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFmaxDegradesWithUtilisation(t *testing.T) {
	board := device.DE4()
	prof := simpleProfile()
	small, err := Fit(board, prof, Knobs{Vectorize: 1, Replicate: 1, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Fit(board, prof, Knobs{Vectorize: 2, Replicate: 4, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.FmaxMHz >= small.FmaxMHz {
		t.Errorf("Fmax should fall with utilisation: %.1f -> %.1f", small.FmaxMHz, big.FmaxMHz)
	}
	if big.PowerWatts <= small.PowerWatts {
		t.Errorf("power should rise with utilisation: %.1f -> %.1f", small.PowerWatts, big.PowerWatts)
	}
}

func TestOverfitRejected(t *testing.T) {
	board := device.DE4()
	prof := simpleProfile()
	// Huge replication must eventually fail the fitter.
	_, err := Fit(board, prof, Knobs{Vectorize: 16, Replicate: 64, Unroll: 8})
	if err == nil {
		t.Fatal("absurd design should not fit")
	}
	if !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDSPBoundDesign(t *testing.T) {
	// A multiply-heavy kernel should hit the DSP wall first.
	prof := KernelProfile{
		Name:             "mul-heavy",
		BodyOps:          map[OpKind]int{DPMul: 20},
		LoopTrips:        1,
		GlobalLoadSites:  1,
		GlobalStoreSites: 1,
	}
	_, err := Fit(device.DE4(), prof, Knobs{Vectorize: 4, Replicate: 1, Unroll: 1})
	if err == nil || !strings.Contains(err.Error(), "DSP") {
		t.Errorf("expected DSP overflow, got %v", err)
	}
}

func TestLocalMemoryScalesM9K(t *testing.T) {
	prof := simpleProfile()
	prof.LocalBytes = 8 << 10
	prof.LocalReadPorts = 2
	prof.LocalWritePorts = 1
	noLocal := simpleProfile()
	k := Knobs{Vectorize: 2, Replicate: 1, Unroll: 2}
	withRep, err := Fit(device.DE4(), prof, k)
	if err != nil {
		t.Fatal(err)
	}
	withoutRep, err := Fit(device.DE4(), noLocal, k)
	if err != nil {
		t.Fatal(err)
	}
	if withRep.M9K <= withoutRep.M9K {
		t.Error("local memory should consume M9K blocks")
	}
}

func TestPipelineDepthPositive(t *testing.T) {
	rep, err := Fit(device.DE4(), simpleProfile(), Knobs{Vectorize: 1, Replicate: 1, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PipelineDepthCyc <= 0 {
		t.Errorf("pipeline depth = %d", rep.PipelineDepthCyc)
	}
}

func TestFitReportString(t *testing.T) {
	rep, err := Fit(device.DE4(), simpleProfile(), Knobs{Vectorize: 2, Replicate: 1, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "synthetic") || !strings.Contains(s, "MHz") {
		t.Errorf("String: %q", s)
	}
}

func TestOpKindString(t *testing.T) {
	for k := OpKind(0); int(k) < numOpKinds; k++ {
		if s := k.String(); s == "" || s == "op-unknown" {
			t.Errorf("OpKind(%d).String() = %q", int(k), s)
		}
	}
	if OpKind(99).String() != "op-unknown" {
		t.Error("unknown op kind should say so")
	}
}

func TestBreakdownSumsToTotals(t *testing.T) {
	rep, err := Fit(device.DE4(), simpleProfile(), Knobs{Vectorize: 2, Replicate: 2, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Breakdown) < 3 {
		t.Fatalf("breakdown too coarse: %d categories", len(rep.Breakdown))
	}
	var aluts, regs, m9k, dsp int
	for _, c := range rep.Breakdown {
		aluts += c.ALUTs
		regs += c.Registers
		m9k += c.M9K
		dsp += c.DSP18
	}
	if aluts != rep.ALUTs || regs != rep.Registers || m9k != rep.M9K || dsp != rep.DSP18 {
		t.Errorf("breakdown sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			aluts, regs, m9k, dsp, rep.ALUTs, rep.Registers, rep.M9K, rep.DSP18)
	}
	// The first category is always the board infrastructure.
	if rep.Breakdown[0].Name != "infrastructure" {
		t.Errorf("first category = %q", rep.Breakdown[0].Name)
	}
}

func TestCapPowerInPackage(t *testing.T) {
	chip := device.DE4().Chip
	rep, err := Fit(device.DE4(), simpleProfile(), Knobs{Vectorize: 2, Replicate: 3, Unroll: 1})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := rep.CapPower(chip, rep.PowerWatts-2)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PowerWatts > rep.PowerWatts-2+1e-9 || capped.FmaxMHz >= rep.FmaxMHz {
		t.Errorf("capping ineffective: %+v", capped)
	}
	if _, err := rep.CapPower(chip, chip.StaticWatts/2); err == nil {
		t.Error("sub-static budget should fail")
	}
	same, err := rep.CapPower(chip, 1e6)
	if err != nil || same.FmaxMHz != rep.FmaxMHz {
		t.Error("generous budget must be a no-op")
	}
}

func TestProfileValidateBranches(t *testing.T) {
	good := simpleProfile()
	bad := good
	bad.GlobalLoadSites = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative load sites should fail")
	}
	bad = good
	bad.LocalBytes = -5
	if err := bad.Validate(); err == nil {
		t.Error("negative local bytes should fail")
	}
	bad = good
	bad.SetupOps = map[OpKind]int{OpKind(99): 1}
	if err := bad.Validate(); err == nil {
		t.Error("unknown setup op should fail")
	}
	bad = good
	bad.BodyOps = map[OpKind]int{OpKind(99): 1}
	if err := bad.Validate(); err == nil {
		t.Error("unknown body op should fail")
	}
}
