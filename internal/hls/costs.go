// Package hls models the FPGA tool flow the paper drives through Altera's
// OpenCL compiler: it takes a kernel's datapath profile and the three
// parallelisation knobs of §V-B (vectorization, pipeline replication, loop
// unrolling), and produces the figures the Quartus II Fitter Summary and
// quartus_pow report in Table I — ALUT/register usage, block-memory bits,
// M9K/DSP counts, the achievable kernel clock, and the power estimate.
//
// The per-operator cost database is a calibrated simulacrum of the
// Stratix IV floating-point datapath library; the structural model (LSUs
// per access site widened by vectorization, local-memory banking, barrier
// live-state buffering) follows how the Altera OpenCL compiler actually
// builds kernels. The two published design points of Table I anchor the
// calibration; everything else (the knob sweeps of experiment E3)
// extrapolates from the same constants.
package hls

// OpKind enumerates datapath operators with distinct hardware costs.
type OpKind int

const (
	// DPMul is a double-precision multiply.
	DPMul OpKind = iota
	// DPAddSub is a double-precision add or subtract.
	DPAddSub
	// DPMax is a double-precision compare-select.
	DPMax
	// DPDiv is a double-precision divide.
	DPDiv
	// DPPow is the Power operator core (log2/multiply/exp2 datapath).
	DPPow
	// DPExp is the exponential core.
	DPExp
	// IntALU is a 32-bit integer add/compare (indexing, addressing).
	IntALU
	numOpKinds int = iota
)

// String names the operator.
func (k OpKind) String() string {
	switch k {
	case DPMul:
		return "dp-mul"
	case DPAddSub:
		return "dp-addsub"
	case DPMax:
		return "dp-max"
	case DPDiv:
		return "dp-div"
	case DPPow:
		return "dp-pow"
	case DPExp:
		return "dp-exp"
	case IntALU:
		return "int-alu"
	default:
		return "op-unknown"
	}
}

// OpCost is the area and latency of one operator instance on Stratix IV.
type OpCost struct {
	ALUTs      int
	Registers  int
	DSP18      int
	M9K        int
	LatencyCyc int
}

// stratixIVOps is the double-precision operator library. ALUT counts for
// adders are dominated by the alignment/normalisation shifters (no
// hard-FP blocks on Stratix IV); multipliers burn 18-bit DSP elements.
var stratixIVOps = [numOpKinds]OpCost{
	DPMul:    {ALUTs: 1000, Registers: 900, DSP18: 16, LatencyCyc: 11},
	DPAddSub: {ALUTs: 2500, Registers: 1800, LatencyCyc: 10},
	DPMax:    {ALUTs: 300, Registers: 250, LatencyCyc: 3},
	DPDiv:    {ALUTs: 3200, Registers: 6400, DSP18: 14, LatencyCyc: 33},
	DPPow:    {ALUTs: 4000, Registers: 5000, DSP18: 30, M9K: 15, LatencyCyc: 21},
	DPExp:    {ALUTs: 4200, Registers: 5200, DSP18: 12, M9K: 8, LatencyCyc: 17},
	IntALU:   {ALUTs: 64, Registers: 48, LatencyCyc: 1},
}

// Structural cost constants of the compiler-generated plumbing.
const (
	// Board infrastructure: PCIe endpoint, DDR2 controllers, kernel
	// dispatch — present in every design.
	infraALUTs = 26000
	infraRegs  = 30000
	infraM9K   = 140
	infraBits  = int64(1200) * 1024

	// Per global load/store unit (one per access site, before widening):
	// burst coalescing FIFOs and alignment networks.
	lsuALUTs = 12000
	lsuRegs  = 12000
	lsuM9K   = 38
	lsuDSP   = 10

	// Per-lane control overhead: handshaking, occupancy counters, live
	// value pipelining between operators.
	laneCtrlALUTs = 2600
	laneCtrlRegs  = 3200
	laneCtrlM9K   = 14

	// Local-memory banking: each concurrent accessor port gets a bank
	// replica plus an arbitration/mux slice.
	localPortALUTs = 1200
	localPortRegs  = 1100

	// Barrier: live-state spill storage per declared barrier site, sized
	// by the maximum work-group size, plus its controller.
	barrierCtrlALUTs = 4000
	barrierCtrlRegs  = 4500
	barrierWGDepth   = 2048 // compiler default max work-group size

	// M9K geometry.
	m9kBits = 9 * 1024
	// Average fill of instantiated block RAM (FIFO depths are rounded up
	// to M9K geometry, so reported "memory bits" sit below capacity).
	m9kFill = 0.85
)
