package hls

import (
	"fmt"

	"binopt/internal/device"
)

// CapPower derates the kernel clock until the power estimate meets the
// given budget, returning the adjusted report. This is the workaround the
// paper proposes for its 7 W overshoot: "the best kernel implemented
// shows faster computation times than necessary; either clock frequency
// or parallelism levels can be lowered to reduce energy consumption"
// (§V-C). It fails if the budget is below the chip's static power — no
// clock can fix leakage.
func (r FitReport) CapPower(chip device.FPGAChip, watts float64) (FitReport, error) {
	if watts <= chip.StaticWatts {
		return r, fmt.Errorf("hls: %.1f W budget below the %.1f W static floor of %s",
			watts, chip.StaticWatts, chip.Name)
	}
	if r.PowerWatts <= watts {
		return r, nil // already inside the budget
	}
	weight := float64(r.Registers) + 40*float64(r.DSP18) + 200*float64(r.M9K)
	fHz := (watts - chip.StaticWatts) / (chip.DynWattsPerWeightHz * weight)
	capped := r
	capped.FmaxMHz = fHz / 1e6
	capped.PowerWatts = watts
	return capped, nil
}
