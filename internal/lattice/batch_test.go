package lattice

import (
	"testing"

	"binopt/internal/option"
)

func chainOf(n int) []option.Option {
	opts := make([]option.Option, n)
	for i := range opts {
		o := amPut()
		o.Strike = 80 + float64(i%50)
		o.Sigma = 0.15 + 0.001*float64(i%100)
		opts[i] = o
	}
	return opts
}

func TestPriceBatchMatchesSequential(t *testing.T) {
	e := mustEngine(t, 64)
	opts := chainOf(101)

	seq := make([]float64, len(opts))
	for i, o := range opts {
		v, err := e.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = v
	}
	for _, workers := range []int{1, 4, 16} {
		par, err := e.PriceBatch(opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d option %d: %v != %v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestPriceBatchEmpty(t *testing.T) {
	e := mustEngine(t, 16)
	out, err := e.PriceBatch(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d results", len(out))
	}
}

func TestPriceBatchPropagatesError(t *testing.T) {
	e := mustEngine(t, 16)
	opts := chainOf(10)
	opts[7].Sigma = -1
	if _, err := e.PriceBatch(opts, 4); err == nil {
		t.Error("invalid option in batch should surface an error")
	}
}

func TestPriceBatchMoreWorkersThanWork(t *testing.T) {
	e := mustEngine(t, 16)
	out, err := e.PriceBatch(chainOf(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("got %d results", len(out))
	}
}
