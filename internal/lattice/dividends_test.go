package lattice

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/option"
)

func TestNoDividendsMatchesPlainPrice(t *testing.T) {
	o := amPut()
	e := mustEngine(t, 256)
	plain, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, divs := range [][]Dividend{nil, {}, {{T: 2.0, Amount: 5}}, {{T: 0.1, Amount: 0}}} {
		withDivs, err := e.PriceWithDividends(o, divs)
		if err != nil {
			t.Fatal(err)
		}
		if withDivs != plain {
			t.Errorf("schedule %v should not change the price: %v vs %v", divs, withDivs, plain)
		}
	}
}

func TestEuropeanEscrowedMatchesBlackScholes(t *testing.T) {
	// Under the escrowed model a European option prices exactly like
	// Black-Scholes on the net spot.
	o := amPut()
	o.Style = option.European
	divs := []Dividend{{T: 0.2, Amount: 2}, {T: 0.4, Amount: 1.5}}
	e := mustEngine(t, 2048)
	got, err := e.PriceWithDividends(o, divs)
	if err != nil {
		t.Fatal(err)
	}
	pv := 2*math.Exp(-o.Rate*0.2) + 1.5*math.Exp(-o.Rate*0.4)
	net := o
	net.Spot = o.Spot - pv
	ref, err := bs.Price(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref) > 0.02 {
		t.Errorf("escrowed european %v vs BS on net spot %v", got, ref)
	}
}

func TestDividendMakesAmericanCallEarlyExercise(t *testing.T) {
	// Without dividends an American call equals the European; a large
	// dividend late in the life makes early exercise valuable.
	call := amPut()
	call.Right = option.Call
	call.Strike = 95
	divs := []Dividend{{T: 0.45, Amount: 6}}
	e := mustEngine(t, 512)

	am, err := e.PriceWithDividends(call, divs)
	if err != nil {
		t.Fatal(err)
	}
	euro := call
	euro.Style = option.European
	eu, err := e.PriceWithDividends(euro, divs)
	if err != nil {
		t.Fatal(err)
	}
	if am <= eu+1e-6 {
		t.Errorf("american call %v should exceed european %v with a large dividend", am, eu)
	}
}

func TestDividendLowersCallRaisesPut(t *testing.T) {
	e := mustEngine(t, 256)
	divs := []Dividend{{T: 0.25, Amount: 3}}

	put := amPut()
	basePut, err := e.Price(put)
	if err != nil {
		t.Fatal(err)
	}
	divPut, err := e.PriceWithDividends(put, divs)
	if err != nil {
		t.Fatal(err)
	}
	if divPut <= basePut {
		t.Errorf("dividend should raise the put: %v vs %v", divPut, basePut)
	}

	call := amPut()
	call.Right = option.Call
	baseCall, err := e.Price(call)
	if err != nil {
		t.Fatal(err)
	}
	divCall, err := e.PriceWithDividends(call, divs)
	if err != nil {
		t.Fatal(err)
	}
	if divCall >= baseCall {
		t.Errorf("dividend should lower the call: %v vs %v", divCall, baseCall)
	}
}

func TestDividendValidation(t *testing.T) {
	e := mustEngine(t, 64)
	o := amPut()
	if _, err := e.PriceWithDividends(o, []Dividend{{T: 0.2, Amount: -1}}); err == nil {
		t.Error("negative dividend should fail")
	}
	if _, err := e.PriceWithDividends(o, []Dividend{{T: math.NaN(), Amount: 1}}); err == nil {
		t.Error("NaN time should fail")
	}
	if _, err := e.PriceWithDividends(o, []Dividend{{T: 0.2, Amount: 500}}); err == nil {
		t.Error("dividend PV above spot should fail")
	}
	bad := o
	bad.Sigma = -1
	if _, err := e.PriceWithDividends(bad, nil); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestDividendScheduleOrderIrrelevant(t *testing.T) {
	e := mustEngine(t, 128)
	o := amPut()
	a := []Dividend{{T: 0.1, Amount: 1}, {T: 0.3, Amount: 2}}
	b := []Dividend{{T: 0.3, Amount: 2}, {T: 0.1, Amount: 1}}
	va, err := e.PriceWithDividends(o, a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := e.PriceWithDividends(o, b)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Errorf("schedule order changed the price: %v vs %v", va, vb)
	}
}
