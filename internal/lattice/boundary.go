package lattice

import (
	"fmt"

	"binopt/internal/option"
)

// BoundaryPoint is one sample of the early-exercise boundary: at time t
// (in years from now), exercising is optimal exactly when the underlying
// crosses Critical (from above for puts, from below for calls).
type BoundaryPoint struct {
	T        float64
	Critical float64
}

// ExerciseBoundary extracts the early-exercise boundary of an American
// option from the lattice: at each time level, the outermost node where
// the exercise value equals the option value. For a put this is the
// highest asset price at which immediate exercise is optimal; for a call
// (with dividends) the lowest. Times with no exercise region yield no
// sample. The boundary is what a desk actually monitors once the option
// is on the book, and a natural by-product of the backward induction the
// accelerator already performs.
func (e *Engine) ExerciseBoundary(o option.Option) ([]BoundaryPoint, error) {
	if o.Style != option.American {
		return nil, fmt.Errorf("lattice: exercise boundary requires an American option, got %v", o.Style)
	}
	lp, err := option.NewLatticeParams(o, e.steps, e.param)
	if err != nil {
		return nil, err
	}
	n := lp.Steps

	rnd := func(x float64) float64 { return x }
	if e.single {
		rnd = func(x float64) float64 { return float64(float32(x)) }
	}
	d := rnd(lp.D)
	pu, pd := rnd(lp.Pu), rnd(lp.Pd)
	strike := rnd(o.Strike)
	invD := rnd(1 / d)

	s := HostLeafPrices(o.Spot, lp, e.param, e.single)
	v := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		v[k] = rnd(payoff(o.Right, s[k], strike))
	}

	var pts []BoundaryPoint
	// exercised tracks the per-level exercise decision to locate the
	// boundary node.
	for t := n - 1; t >= 0; t-- {
		critical := -1.0
		for k := 0; k <= t; k++ {
			s[k] = rnd(s[k] * invD)
			cont := rnd(rnd(pu*v[k+1]) + rnd(pd*v[k]))
			ex := rnd(payoff(o.Right, s[k], strike))
			if ex > cont {
				cont = ex
				// Puts exercise below the boundary: track the highest
				// exercised node. Calls exercise above: track the lowest.
				if o.Right == option.Put {
					if s[k] > critical {
						critical = s[k]
					}
				} else if critical < 0 || s[k] < critical {
					critical = s[k]
				}
			}
			v[k] = cont
		}
		if critical >= 0 {
			pts = append(pts, BoundaryPoint{T: float64(t) * lp.Dt, Critical: critical})
		}
	}
	// Reverse into increasing time order.
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
	return pts, nil
}
