package lattice

import (
	"math"

	"binopt/internal/option"
)

// Plan is the reusable per-contract half of the plan/execute split: the
// derived lattice coefficients in working precision, the leaf asset-price
// ladder, the leaf payoff table, and the working buffers the backward
// sweep consumes. Planning (coefficient derivation, leaf initialisation)
// happens once; execution can then run — and, via Reset, re-run for a
// bumped contract — without re-allocating anything. The Greeks bumps and
// the batch pricer's per-worker scratch both lean on that reuse.
//
// A Plan belongs to the Engine that built it and is not safe for
// concurrent use.
type Plan struct {
	eng *Engine
	opt option.Option
	lp  option.LatticeParams

	// Coefficients pre-rounded to the engine's working precision, the
	// "option-dependent data" buffer of the paper's kernels.
	pu, pd, invD, strike float64
	american             bool

	// leaves holds the leaf asset prices S(N,k); payoffs the leaf option
	// values. Exec copies them into the working buffers s and v, so a
	// plan can execute any number of times.
	leaves, payoffs []float64
	s, v            []float64
}

// NewPlan derives a pricing plan for the contract at the engine's depth,
// precision and leaf-initialisation mode.
func (e *Engine) NewPlan(o option.Option) (*Plan, error) {
	n := e.steps
	p := &Plan{
		eng:     e,
		leaves:  make([]float64, n+1),
		payoffs: make([]float64, n+1),
		s:       make([]float64, n+1),
		v:       make([]float64, n+1),
	}
	if err := p.Reset(o); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset re-plans for a new contract, reusing every buffer. When only the
// rates moved under the CRR parameterisation — the rho bump — the leaf
// ladder and payoff table are provably unchanged (CRR's u and d depend
// on sigma and dt alone, and the payoff on leaves and strike alone), so
// Reset skips re-deriving them and refreshes just the discounted
// probabilities.
func (p *Plan) Reset(o option.Option) error {
	e := p.eng
	lp, err := option.NewLatticeParams(o, e.steps, e.param)
	if err != nil {
		return err
	}
	ratesOnly := e.param == option.CRR && sameLeafInputs(p.opt, o) &&
		math.Float64bits(p.lp.U) == math.Float64bits(lp.U) &&
		math.Float64bits(p.lp.D) == math.Float64bits(lp.D)

	rnd := rounder(e.single)
	d := rnd(lp.D)
	p.opt = o
	p.lp = lp
	p.pu, p.pd = rnd(lp.Pu), rnd(lp.Pd)
	p.invD = rnd(1 / d)
	p.strike = rnd(o.Strike)
	p.american = o.Style == option.American
	if ratesOnly {
		return nil
	}

	switch e.leaf {
	case LeafDevicePow:
		deviceLeafFill(p.leaves, 1, 0, o.Spot, lp, e.pow, e.single)
	default:
		hostLeafFill(p.leaves, 1, 0, o.Spot, lp, e.param, e.single)
	}
	for k := 0; k <= lp.Steps; k++ {
		p.payoffs[k] = rnd(payoff(o.Right, p.leaves[k], p.strike))
	}
	return nil
}

// sameLeafInputs reports whether two contracts share every field the
// leaf ladder and payoff table depend on — everything except the rates.
// Floats compare by bits: a bump is a bump even when it rounds back.
func sameLeafInputs(a, b option.Option) bool {
	return a.Right == b.Right && a.Style == b.Style &&
		math.Float64bits(a.Spot) == math.Float64bits(b.Spot) &&
		math.Float64bits(a.Strike) == math.Float64bits(b.Strike) &&
		math.Float64bits(a.Sigma) == math.Float64bits(b.Sigma) &&
		math.Float64bits(a.T) == math.Float64bits(b.T)
}

// Params exposes the plan's derived lattice coefficients.
func (p *Plan) Params() option.LatticeParams { return p.lp }

// Exec runs the backward sweep and returns the option value. The scalar
// sweep is the repository's bit-parity reference: every fast path (the
// quad kernel, the tiled variant, the platform engines) is asserted
// bit-identical to it.
func (p *Plan) Exec() float64 {
	v, _ := p.ExecRetain(0)
	return v
}

// ExecRetain is Exec plus the node values of the first `retain` time
// levels (levels 0..retain-1, each level t holding t+1 values). The
// Greeks computation needs levels 0..2.
//
//binopt:kernel scalar backward-induction sweep, the bit-parity reference
func (p *Plan) ExecRetain(retain int) (float64, [][]float64) {
	rnd := rounder(p.eng.single)
	n := p.lp.Steps
	s, v := p.s, p.v
	copy(s, p.leaves)
	copy(v, p.payoffs)

	var kept [][]float64
	if retain > 0 {
		kept = make([][]float64, retain)
	}

	right := p.opt.Right
	pu, pd, invD, strike := p.pu, p.pd, p.invD, p.strike
	american := p.american
	for t := n - 1; t >= 0; t-- {
		// Asset prices at level t from level t+1: S(t,k) = S(t+1,k)/d.
		// Continuation and early exercise per node.
		for k := 0; k <= t; k++ {
			s[k] = rnd(s[k] * invD)
			cont := rnd(rnd(pu*v[k+1]) + rnd(pd*v[k]))
			if american {
				if ex := rnd(payoff(right, s[k], strike)); ex > cont {
					cont = ex
				}
			}
			v[k] = cont
		}
		if t < retain {
			level := make([]float64, t+1)
			copy(level, v[:t+1])
			kept[t] = level
		}
	}
	return v[0], kept
}
