package lattice

import (
	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// HostLeafPrices returns the leaf asset prices S(N,k) computed the way
// the paper's host code does for kernel IV.A: iterated multiplication
// from the bottom node, in double or single precision. Kernel drivers
// and the native engines share this helper so their numerics agree
// bit-for-bit.
func HostLeafPrices(spot float64, lp option.LatticeParams, param option.Parameterisation, single bool) []float64 {
	s := make([]float64, lp.Steps+1)
	hostLeafFill(s, 1, 0, spot, lp, param, single)
	return s
}

// hostLeafFill writes the host-computed leaves into dst at the given
// stride and offset: dst[off+k*stride] = S(N,k). The strided form is
// what lets the quad plan stream leaves straight into its interleaved
// stepsArray layout while running the exact multiplication chain of the
// scalar reference — one shared body, one shared rounding story.
//
//binopt:kernel host-side leaf initialisation (kernel IV.A's host stage)
func hostLeafFill(dst []float64, stride, off int, spot float64, lp option.LatticeParams, param option.Parameterisation, single bool) {
	rnd := rounder(single)
	n := lp.Steps
	u, d := rnd(lp.U), rnd(lp.D)
	x := rnd(spot)
	for i := 0; i < n; i++ {
		x = rnd(x * d)
	}
	dst[off] = x
	ud := rnd(u * u) // CRR: u/d = u*u since d = 1/u
	if param != option.CRR {
		ud = rnd(u / d)
	}
	for k := 1; k <= n; k++ {
		x = rnd(x * ud)
		dst[off+k*stride] = x
	}
}

// DeviceLeafPrices returns the leaf asset prices computed the way kernel
// IV.B initialises them on the device: one Power-operator evaluation per
// leaf, S(N,k) = S0 * u^(2k-N) (the CRR telescoped form; d = 1/u). The
// pow core carries the accuracy of the emulated hardware operator.
func DeviceLeafPrices(spot float64, lp option.LatticeParams, pow hwmath.PowCore, single bool) []float64 {
	s := make([]float64, lp.Steps+1)
	deviceLeafFill(s, 1, 0, spot, lp, pow, single)
	return s
}

// deviceLeafFill is the strided form of DeviceLeafPrices, for the quad
// plan's interleaved buffers. Same per-leaf Power evaluation, same
// rounding placement.
//
//binopt:kernel device-side leaf initialisation (kernel IV.B's per-work-item stage)
func deviceLeafFill(dst []float64, stride, off int, spot float64, lp option.LatticeParams, pow hwmath.PowCore, single bool) {
	rnd := rounder(single)
	n := lp.Steps
	u := rnd(lp.U) // the device reads u from the params buffer in its precision
	for k := 0; k <= n; k++ {
		dst[off+k*stride] = rnd(rnd(spot) * rnd(pow.Pow(u, float64(2*k-n))))
	}
}

// rounder returns the per-operation rounding of the chosen precision.
func rounder(single bool) func(float64) float64 {
	if single {
		return func(x float64) float64 { return float64(float32(x)) }
	}
	return func(x float64) float64 { return x }
}
