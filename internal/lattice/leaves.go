package lattice

import (
	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// HostLeafPrices returns the leaf asset prices S(N,k) computed the way
// the paper's host code does for kernel IV.A: iterated multiplication
// from the bottom node, in double or single precision. Kernel drivers
// and the native engines share this helper so their numerics agree
// bit-for-bit.
func HostLeafPrices(spot float64, lp option.LatticeParams, param option.Parameterisation, single bool) []float64 {
	rnd := rounder(single)
	n := lp.Steps
	u, d := rnd(lp.U), rnd(lp.D)
	s := make([]float64, n+1)
	s[0] = rnd(spot)
	for i := 0; i < n; i++ {
		s[0] = rnd(s[0] * d)
	}
	ud := rnd(u * u) // CRR: u/d = u*u since d = 1/u
	if param != option.CRR {
		ud = rnd(u / d)
	}
	for k := 1; k <= n; k++ {
		s[k] = rnd(s[k-1] * ud)
	}
	return s
}

// DeviceLeafPrices returns the leaf asset prices computed the way kernel
// IV.B initialises them on the device: one Power-operator evaluation per
// leaf, S(N,k) = S0 * u^(2k-N) (the CRR telescoped form; d = 1/u). The
// pow core carries the accuracy of the emulated hardware operator.
func DeviceLeafPrices(spot float64, lp option.LatticeParams, pow hwmath.PowCore, single bool) []float64 {
	rnd := rounder(single)
	n := lp.Steps
	u := rnd(lp.U) // the device reads u from the params buffer in its precision
	s := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		s[k] = rnd(rnd(spot) * rnd(pow.Pow(u, float64(2*k-n))))
	}
	return s
}

// rounder returns the per-operation rounding of the chosen precision.
func rounder(single bool) func(float64) float64 {
	if single {
		return func(x float64) float64 { return float64(float32(x)) }
	}
	return func(x float64) float64 { return x }
}
