package lattice

import (
	"fmt"

	"binopt/internal/option"
)

// QuadPlan prices up to four options through one shared backward sweep,
// mirroring the stepsArray layout of the paper's exemplar kernels: the
// four lanes are interleaved in one flat [(n+1)*4]float64 buffer
// (cl_float4 quads), so every node visit touches four contiguous values
// and amortises the sweep's loop and memory traffic across four
// contracts. Each lane runs exactly the scalar reference's operation
// sequence in the engine's working precision, so the quad results are
// bit-identical to Plan.Exec — the parity sweep in quad_test.go pins
// that across rights, styles, depths, precisions and leaf modes.
//
// A QuadPlan is single-shot scratch: Load derives the four lanes
// straight into the working buffers, Exec (or ExecTiled) consumes them.
// Reload before executing again. Not safe for concurrent use; the batch
// pricer keeps one per worker.
type QuadPlan struct {
	eng   *Engine
	n     int
	lanes int // active lanes (1..4); unused lanes mirror lane 0

	// Per-lane coefficients in working precision.
	pu, pd, invD, strike [4]float64
	american, isCall     [4]bool

	// steps is the interleaved option-value buffer (the stepsArray);
	// ladder the interleaved asset-price ladder the early-exercise
	// comparisons read.
	steps  []float64
	ladder []float64
}

// NewQuadPlan allocates quad scratch for the engine's depth.
func (e *Engine) NewQuadPlan() *QuadPlan {
	n := e.steps
	return &QuadPlan{
		eng:    e,
		n:      n,
		steps:  make([]float64, (n+1)*4),
		ladder: make([]float64, (n+1)*4),
	}
}

// Load plans 1–4 contracts into the four lanes. On error it names the
// failing position within opts.
func (q *QuadPlan) Load(opts []option.Option) error {
	lane, err := q.load(opts)
	if err != nil {
		return fmt.Errorf("lattice: quad lane %d: %w", lane, err)
	}
	return nil
}

// load is Load returning the failing lane index for callers that need to
// map it back onto a batch position.
func (q *QuadPlan) load(opts []option.Option) (int, error) {
	if len(opts) == 0 || len(opts) > 4 {
		return 0, fmt.Errorf("lattice: quad plan needs 1..4 options, got %d", len(opts))
	}
	e := q.eng
	rnd := rounder(e.single)
	n := q.n
	for i, o := range opts {
		lp, err := option.NewLatticeParams(o, n, e.param)
		if err != nil {
			return i, err
		}
		d := rnd(lp.D)
		q.pu[i], q.pd[i] = rnd(lp.Pu), rnd(lp.Pd)
		q.invD[i] = rnd(1 / d)
		q.strike[i] = rnd(o.Strike)
		q.american[i] = o.Style == option.American
		q.isCall[i] = o.Right == option.Call
		switch e.leaf {
		case LeafDevicePow:
			deviceLeafFill(q.ladder, 4, i, o.Spot, lp, e.pow, e.single)
		default:
			hostLeafFill(q.ladder, 4, i, o.Spot, lp, e.param, e.single)
		}
		for k := 0; k <= n; k++ {
			q.steps[k*4+i] = rnd(payoff(o.Right, q.ladder[k*4+i], q.strike[i]))
		}
	}
	q.lanes = len(opts)
	// Unused lanes mirror lane 0 so the sweep stays branch-free over a
	// full quad; their results are discarded.
	for i := q.lanes; i < 4; i++ {
		q.pu[i], q.pd[i] = q.pu[0], q.pd[0]
		q.invD[i], q.strike[i] = q.invD[0], q.strike[0]
		q.american[i], q.isCall[i] = q.american[0], q.isCall[0]
		for k := 0; k <= n; k++ {
			q.ladder[k*4+i] = q.ladder[k*4]
			q.steps[k*4+i] = q.steps[k*4]
		}
	}
	return 0, nil
}

// Exec runs the straight interleaved sweep and returns the four lane
// values (entries past the loaded lane count mirror lane 0).
func (q *QuadPlan) Exec() [4]float64 {
	if q.eng.single {
		q.sweepSingle()
	} else {
		q.sweepDouble()
	}
	var out [4]float64
	copy(out[:], q.steps[:4])
	return out
}

// sweepDouble is the double-precision interleaved backward sweep: each
// level is one contiguous run over columns [0, t].
//
//binopt:kernel quad interleaved backward sweep (double precision)
func (q *QuadPlan) sweepDouble() {
	for t := q.n - 1; t >= 0; t-- {
		q.runDouble(q.steps, q.ladder, 0, t+1)
	}
}

// sweepSingle is the single-precision interleaved sweep, rounding
// through float32 at exactly the scalar reference's points.
//
//binopt:kernel quad interleaved backward sweep (single precision)
func (q *QuadPlan) sweepSingle() {
	for t := q.n - 1; t >= 0; t-- {
		q.runSingle(q.steps, q.ladder, 0, t+1)
	}
}

// runDouble reduces the contiguous columns [lo, hi) of one level, each
// column's up-neighbour sitting four slots ahead in v — the layout
// shared by the straight sweep, the interior of a tiled strip, and the
// apron advance. The four lanes are unrolled with constant indices so
// the compiler eliminates the bounds checks and pins the per-lane
// coefficients in registers.
//
// The explicit float64 conversions around the products pin the
// two-rounding arithmetic of the scalar reference: the Go spec licenses
// fusing a multiply-add into one rounding unless an explicit conversion
// separates them, and a fused lane would break bit parity exactly the
// way a device-side FMA contraction would. The early-exercise test
// compares the raw moneyness against the continuation directly; this is
// bit-identical to the reference's max(moneyness, 0) comparison because
// node values are never negative (NewLatticeParams rejects
// probabilities outside (0,1), so both discounted weights are positive
// and every value is a non-negative combination of non-negative
// payoffs).
//
//binopt:kernel quad interleaved level reduction (double precision)
func (q *QuadPlan) runDouble(v, lad []float64, lo, hi int) {
	pu0, pu1, pu2, pu3 := q.pu[0], q.pu[1], q.pu[2], q.pu[3]
	pd0, pd1, pd2, pd3 := q.pd[0], q.pd[1], q.pd[2], q.pd[3]
	iv0, iv1, iv2, iv3 := q.invD[0], q.invD[1], q.invD[2], q.invD[3]
	sk0, sk1, sk2, sk3 := q.strike[0], q.strike[1], q.strike[2], q.strike[3]
	am0, am1, am2, am3 := q.american[0], q.american[1], q.american[2], q.american[3]
	cl0, cl1, cl2, cl3 := q.isCall[0], q.isCall[1], q.isCall[2], q.isCall[3]
	for k := lo; k < hi; k++ {
		b := k * 4
		row := v[b : b+8 : b+8]
		sl := lad[b : b+4 : b+4]

		s0 := sl[0] * iv0
		sl[0] = s0
		c0 := float64(pu0*row[4]) + float64(pd0*row[0])
		if am0 {
			var dd float64
			if cl0 {
				dd = s0 - sk0
			} else {
				dd = sk0 - s0
			}
			if dd > c0 {
				c0 = dd
			}
		}
		row[0] = c0

		s1 := sl[1] * iv1
		sl[1] = s1
		c1 := float64(pu1*row[5]) + float64(pd1*row[1])
		if am1 {
			var dd float64
			if cl1 {
				dd = s1 - sk1
			} else {
				dd = sk1 - s1
			}
			if dd > c1 {
				c1 = dd
			}
		}
		row[1] = c1

		s2 := sl[2] * iv2
		sl[2] = s2
		c2 := float64(pu2*row[6]) + float64(pd2*row[2])
		if am2 {
			var dd float64
			if cl2 {
				dd = s2 - sk2
			} else {
				dd = sk2 - s2
			}
			if dd > c2 {
				c2 = dd
			}
		}
		row[2] = c2

		s3 := sl[3] * iv3
		sl[3] = s3
		c3 := float64(pu3*row[7]) + float64(pd3*row[3])
		if am3 {
			var dd float64
			if cl3 {
				dd = s3 - sk3
			} else {
				dd = sk3 - s3
			}
			if dd > c3 {
				c3 = dd
			}
		}
		row[3] = c3
	}
}

// runSingle is runDouble with every operation rounded through float32
// at exactly the points the scalar reference's rounder does — including
// the moneyness, which the reference rounds before its comparison.
//
//binopt:kernel quad interleaved level reduction (single precision)
func (q *QuadPlan) runSingle(v, lad []float64, lo, hi int) {
	pu0, pu1, pu2, pu3 := q.pu[0], q.pu[1], q.pu[2], q.pu[3]
	pd0, pd1, pd2, pd3 := q.pd[0], q.pd[1], q.pd[2], q.pd[3]
	iv0, iv1, iv2, iv3 := q.invD[0], q.invD[1], q.invD[2], q.invD[3]
	sk0, sk1, sk2, sk3 := q.strike[0], q.strike[1], q.strike[2], q.strike[3]
	am0, am1, am2, am3 := q.american[0], q.american[1], q.american[2], q.american[3]
	cl0, cl1, cl2, cl3 := q.isCall[0], q.isCall[1], q.isCall[2], q.isCall[3]
	for k := lo; k < hi; k++ {
		b := k * 4
		row := v[b : b+8 : b+8]
		sl := lad[b : b+4 : b+4]

		s0 := float64(float32(sl[0] * iv0))
		sl[0] = s0
		u0 := float64(float32(pu0 * row[4]))
		d0 := float64(float32(pd0 * row[0]))
		c0 := float64(float32(u0 + d0))
		if am0 {
			var dd float64
			if cl0 {
				dd = float64(float32(s0 - sk0))
			} else {
				dd = float64(float32(sk0 - s0))
			}
			if dd > c0 {
				c0 = dd
			}
		}
		row[0] = c0

		s1 := float64(float32(sl[1] * iv1))
		sl[1] = s1
		u1 := float64(float32(pu1 * row[5]))
		d1 := float64(float32(pd1 * row[1]))
		c1 := float64(float32(u1 + d1))
		if am1 {
			var dd float64
			if cl1 {
				dd = float64(float32(s1 - sk1))
			} else {
				dd = float64(float32(sk1 - s1))
			}
			if dd > c1 {
				c1 = dd
			}
		}
		row[1] = c1

		s2 := float64(float32(sl[2] * iv2))
		sl[2] = s2
		u2 := float64(float32(pu2 * row[6]))
		d2 := float64(float32(pd2 * row[2]))
		c2 := float64(float32(u2 + d2))
		if am2 {
			var dd float64
			if cl2 {
				dd = float64(float32(s2 - sk2))
			} else {
				dd = float64(float32(sk2 - s2))
			}
			if dd > c2 {
				c2 = dd
			}
		}
		row[2] = c2

		s3 := float64(float32(sl[3] * iv3))
		sl[3] = s3
		u3 := float64(float32(pu3 * row[7]))
		d3 := float64(float32(pd3 * row[3]))
		c3 := float64(float32(u3 + d3))
		if am3 {
			var dd float64
			if cl3 {
				dd = float64(float32(s3 - sk3))
			} else {
				dd = float64(float32(sk3 - s3))
			}
			if dd > c3 {
				c3 = dd
			}
		}
		row[3] = c3
	}
}
