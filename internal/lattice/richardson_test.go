package lattice

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/option"
)

func TestRichardsonImprovesEuropean(t *testing.T) {
	o := amPut()
	o.Style = option.European
	ref, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	// Average the error over a strike sweep: pointwise, the CRR payoff
	// kink oscillation can flatter the plain tree at individual strikes.
	var plainErr, richErr float64
	for i := 0; i < 9; i++ {
		oo := o
		oo.Strike = 85 + 5*float64(i)
		refV, err := bs.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		e := mustEngine(t, 512)
		plain, err := e.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		rich, err := e.PriceRichardson(oo)
		if err != nil {
			t.Fatal(err)
		}
		plainErr += math.Abs(plain - refV)
		richErr += math.Abs(rich - refV)
	}
	_ = ref
	if richErr > plainErr {
		t.Errorf("richardson mean error %g worse than plain %g", richErr/9, plainErr/9)
	}
}

func TestRichardsonNeedsTwoSteps(t *testing.T) {
	e := mustEngine(t, 1)
	if _, err := e.PriceRichardson(amPut()); err == nil {
		t.Error("richardson with 1 step should fail")
	}
}

func TestBBSBeatsPlainTreeOnEuropean(t *testing.T) {
	o := amPut()
	o.Style = option.European
	ref, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, 128)
	plain, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := e.PriceBBS(o, bs.Price)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smooth-ref) > math.Abs(plain-ref)+1e-9 {
		t.Errorf("BBS error %g worse than plain %g", math.Abs(smooth-ref), math.Abs(plain-ref))
	}
}

func TestBBSAmericanAboveEuropean(t *testing.T) {
	e := mustEngine(t, 128)
	am, err := e.PriceBBS(amPut(), bs.Price)
	if err != nil {
		t.Fatal(err)
	}
	o := amPut()
	o.Style = option.European
	eu, err := e.PriceBBS(o, bs.Price)
	if err != nil {
		t.Fatal(err)
	}
	if am < eu {
		t.Errorf("BBS american %v below european %v", am, eu)
	}
}

func TestBBSErrors(t *testing.T) {
	e := mustEngine(t, 1)
	if _, err := e.PriceBBS(amPut(), bs.Price); err == nil {
		t.Error("BBS with 1 step should fail")
	}
	e = mustEngine(t, 64)
	bad := amPut()
	bad.T = -1
	if _, err := e.PriceBBS(bad, bs.Price); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestIntPow(t *testing.T) {
	if got := pow(2, 10); got != 1024 {
		t.Errorf("pow(2,10) = %v", got)
	}
	if got := pow(2, -2); got != 0.25 {
		t.Errorf("pow(2,-2) = %v", got)
	}
	if got := pow(3, 0); got != 1 {
		t.Errorf("pow(3,0) = %v", got)
	}
}
