package lattice

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"binopt/internal/option"
)

// PriceBatch prices every option in opts and returns the values in the
// same order. workers limits the number of goroutines; workers <= 0 uses
// GOMAXPROCS.
//
// Work is dispatched in quad groups: four consecutive options share one
// interleaved backward sweep (the QuadPlan), and a trailing group of
// fewer than four falls back to the scalar plan. Each worker owns one
// reusable QuadPlan and one reusable scalar Plan, so a steady batch
// allocates nothing per group. Results are bit-identical to pricing each
// option alone — the quad lanes run the scalar reference's exact
// operation sequence — so parallelism and grouping never change the
// numbers, only the wall clock.
//
// On the first error the dispatcher stops handing out new groups and the
// workers drain the remainder without pricing it: a doomed batch fails
// fast instead of burning cores on work whose results will be discarded.
func (e *Engine) PriceBatch(opts []option.Option, workers int) ([]float64, error) {
	out, _, err := e.priceBatch(opts, workers)
	return out, err
}

// priceBatch additionally reports how many groups were actually priced
// (attempted), which the early-stop regression test pins.
func (e *Engine) priceBatch(opts []option.Option, workers int) ([]float64, int64, error) {
	out := make([]float64, len(opts))
	if len(opts) == 0 {
		return out, 0, nil
	}
	groups := (len(opts) + 3) / 4
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > groups {
		workers = groups
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
		priced   atomic.Int64
	)
	stop := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			failed.Store(true)
			close(stop)
		}
		mu.Unlock()
	}

	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qp *QuadPlan
			var sp *Plan
			for g := range next {
				if failed.Load() {
					continue // drain doomed work without pricing it
				}
				priced.Add(1)
				lo := g * 4
				hi := lo + 4
				if hi > len(opts) {
					hi = len(opts)
				}
				if hi-lo == 4 {
					if qp == nil {
						qp = e.NewQuadPlan()
					}
					lane, err := qp.load(opts[lo:hi])
					if err != nil {
						fail(fmt.Errorf("lattice: option %d: %w", lo+lane, err))
						continue
					}
					res := qp.Exec()
					copy(out[lo:hi], res[:])
					continue
				}
				for i := lo; i < hi; i++ {
					var err error
					if sp == nil {
						sp, err = e.NewPlan(opts[i])
					} else {
						err = sp.Reset(opts[i])
					}
					if err != nil {
						fail(fmt.Errorf("lattice: option %d: %w", i, err))
						break
					}
					out[i] = sp.Exec()
				}
			}
		}()
	}

feed:
	for g := 0; g < groups; g++ {
		select {
		case next <- g:
		case <-stop:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, priced.Load(), firstErr
	}
	return out, priced.Load(), nil
}
