package lattice

import (
	"fmt"
	"runtime"
	"sync"

	"binopt/internal/option"
)

// PriceBatch prices every option in opts and returns the values in the
// same order. workers limits the number of goroutines; workers <= 0 uses
// GOMAXPROCS. A single worker reproduces the paper's single-core software
// reference exactly (the engines are deterministic, so parallelism never
// changes the results, only the wall clock).
func (e *Engine) PriceBatch(opts []option.Option, workers int) ([]float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(opts) {
		workers = len(opts)
	}
	out := make([]float64, len(opts))
	if len(opts) == 0 {
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				v, err := e.Price(opts[i])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("lattice: option %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	for i := range opts {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
