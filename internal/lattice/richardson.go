package lattice

import (
	"fmt"

	"binopt/internal/option"
)

// PriceRichardson applies two-point Richardson extrapolation to the
// lattice value. Because the CRR error oscillates with the position of
// the strike between nodes, each resolution is first smoothed by
// averaging the N- and (N+1)-step trees; the extrapolation 2*V(N) -
// V(N/2) then cancels the leading O(1/N) error term. This is the accuracy
// extension the related-work survey ([12] in the paper) attributes to
// tree methods when time-to-solution is the key constraint: roughly the
// accuracy of a much larger tree for ~3x the work.
func (e *Engine) PriceRichardson(o option.Option) (float64, error) {
	if e.steps < 2 {
		return 0, fmt.Errorf("lattice: richardson extrapolation needs at least 2 steps, got %d", e.steps)
	}
	vFull, err := e.smoothedPair(o, e.steps)
	if err != nil {
		return 0, err
	}
	vHalf, err := e.smoothedPair(o, e.steps/2)
	if err != nil {
		return 0, err
	}
	return 2*vFull - vHalf, nil
}

// smoothedPair averages the n- and (n+1)-step tree values, removing the
// even/odd oscillation of the binomial scheme.
func (e *Engine) smoothedPair(o option.Option, n int) (float64, error) {
	a := *e
	a.steps = n
	va, err := a.Price(o)
	if err != nil {
		return 0, err
	}
	b := *e
	b.steps = n + 1
	vb, err := b.Price(o)
	if err != nil {
		return 0, err
	}
	return 0.5 * (va + vb), nil
}

// PriceBBS prices with Black–Scholes smoothing of the final step
// ("Binomial Black–Scholes"): the tree is rolled back normally except that
// the values one step before expiry are the closed-form European values
// over the final dt (with the early-exercise floor for American options).
// This removes the payoff-kink oscillation of the plain CRR tree and is a
// documented extension point for the accuracy experiments.
func (e *Engine) PriceBBS(o option.Option, euro func(option.Option) (float64, error)) (float64, error) {
	if e.steps < 2 {
		return 0, fmt.Errorf("lattice: BBS needs at least 2 steps, got %d", e.steps)
	}
	lp, err := option.NewLatticeParams(o, e.steps, e.param)
	if err != nil {
		return 0, err
	}
	n := lp.Steps

	// Values at level n-1 via the closed form over the final step.
	v := make([]float64, n)
	s := make([]float64, n)
	for k := 0; k < n; k++ {
		s[k] = o.Spot * pow(lp.U, k) * pow(lp.D, n-1-k)
		leafOpt := o
		leafOpt.Style = option.European
		leafOpt.Spot = s[k]
		leafOpt.T = lp.Dt
		ve, err := euro(leafOpt)
		if err != nil {
			return 0, err
		}
		if o.Style == option.American {
			if ex := o.Payoff(s[k]); ex > ve {
				ve = ex
			}
		}
		v[k] = ve
	}

	american := o.Style == option.American
	for t := n - 2; t >= 0; t-- {
		for k := 0; k <= t; k++ {
			s[k] = s[k] / lp.D
			cont := lp.Pu*v[k+1] + lp.Pd*v[k]
			if american {
				if ex := o.Payoff(s[k]); ex > cont {
					cont = ex
				}
			}
			v[k] = cont
		}
	}
	return v[0], nil
}

// pow is integer exponentiation by squaring, exact for the moderate
// exponents used in leaf construction.
func pow(x float64, n int) float64 {
	if n < 0 {
		return 1 / pow(x, -n)
	}
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
		n >>= 1
	}
	return r
}
