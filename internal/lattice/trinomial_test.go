package lattice

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/option"
)

func TestTrinomialEuropeanConvergesToBS(t *testing.T) {
	o := amPut()
	o.Style = option.European
	ref, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewTrinomialEngine(512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref) > 5e-3 {
		t.Errorf("trinomial %v vs BS %v", got, ref)
	}
}

func TestTrinomialBeatsBinomialPerLevel(t *testing.T) {
	// At matched depth the trinomial's richer branching should beat the
	// binomial on a strike sweep (both oscillate pointwise).
	o := amPut()
	o.Style = option.European
	var binErr, triErr float64
	for i := 0; i < 7; i++ {
		oo := o
		oo.Strike = 85 + 5*float64(i)
		ref, err := bs.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		be := mustEngine(t, 128)
		bv, err := be.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		te, err := NewTrinomialEngine(128)
		if err != nil {
			t.Fatal(err)
		}
		tv, err := te.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		binErr += math.Abs(bv - ref)
		triErr += math.Abs(tv - ref)
	}
	if triErr > binErr {
		t.Errorf("trinomial mean error %g worse than binomial %g at equal depth", triErr/7, binErr/7)
	}
}

func TestTrinomialAmericanMatchesBinomial(t *testing.T) {
	o := amPut()
	te, err := NewTrinomialEngine(1024)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := te.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	be := mustEngine(t, 4096)
	bv, err := be.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-bv) > 5e-3 {
		t.Errorf("trinomial american %v vs deep binomial %v", tv, bv)
	}
}

func TestTrinomialAmericanAboveEuropean(t *testing.T) {
	e, err := NewTrinomialEngine(256)
	if err != nil {
		t.Fatal(err)
	}
	am, err := e.Price(amPut())
	if err != nil {
		t.Fatal(err)
	}
	euro := amPut()
	euro.Style = option.European
	eu, err := e.Price(euro)
	if err != nil {
		t.Fatal(err)
	}
	if am < eu {
		t.Errorf("american %v below european %v", am, eu)
	}
}

func TestTrinomialValidation(t *testing.T) {
	if _, err := NewTrinomialEngine(0); err == nil {
		t.Error("zero steps should fail")
	}
	e, err := NewTrinomialEngine(8)
	if err != nil {
		t.Fatal(err)
	}
	bad := amPut()
	bad.Sigma = -1
	if _, err := e.Price(bad); err == nil {
		t.Error("invalid option should fail")
	}
	// Degenerate probabilities: huge drift against tiny vol at 1 step.
	drifty := amPut()
	drifty.Rate = 0.9
	drifty.Sigma = 0.02
	one, err := NewTrinomialEngine(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Price(drifty); err == nil {
		t.Error("degenerate probabilities should fail")
	}
	if e.Steps() != 8 {
		t.Error("Steps accessor broken")
	}
}
