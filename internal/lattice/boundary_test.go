package lattice

import (
	"testing"

	"binopt/internal/option"
)

func TestExerciseBoundaryPutShape(t *testing.T) {
	o := amPut()
	e := mustEngine(t, 512)
	pts, err := e.ExerciseBoundary(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 100 {
		t.Fatalf("boundary too sparse: %d points", len(pts))
	}
	// Boundary lies below the strike and is non-decreasing toward expiry
	// (the put's critical price rises to K as time runs out).
	for i, p := range pts {
		if p.Critical >= o.Strike {
			t.Fatalf("point %d: critical %v above strike", i, p.Critical)
		}
		if p.Critical <= 0 {
			t.Fatalf("point %d: critical %v not positive", i, p.Critical)
		}
	}
	// Compare early vs late thirds to tolerate lattice wobble.
	early := pts[len(pts)/6].Critical
	late := pts[len(pts)-2].Critical
	if late <= early {
		t.Errorf("put boundary should rise toward expiry: early %v late %v", early, late)
	}
	// Time axis increasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatal("boundary times not increasing")
		}
	}
}

func TestExerciseBoundaryCallWithDividends(t *testing.T) {
	o := amPut()
	o.Right = option.Call
	o.Strike = 95
	o.Div = 0.06 // dividends make early call exercise optimal
	e := mustEngine(t, 512)
	pts, err := e.ExerciseBoundary(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("dividend-paying call should have an exercise region")
	}
	for _, p := range pts {
		if p.Critical <= o.Strike {
			t.Fatalf("call boundary %v must lie above the strike", p.Critical)
		}
	}
}

func TestExerciseBoundaryCallNoDividendsEmpty(t *testing.T) {
	o := amPut()
	o.Right = option.Call // no dividends: never exercise early
	e := mustEngine(t, 256)
	pts, err := e.ExerciseBoundary(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Errorf("no-dividend call should have no exercise region, got %d points", len(pts))
	}
}

func TestExerciseBoundaryRejectsEuropean(t *testing.T) {
	o := amPut()
	o.Style = option.European
	e := mustEngine(t, 64)
	if _, err := e.ExerciseBoundary(o); err == nil {
		t.Error("European option should be rejected")
	}
}

func TestExerciseBoundaryValidates(t *testing.T) {
	o := amPut()
	o.Sigma = -1
	e := mustEngine(t, 64)
	if _, err := e.ExerciseBoundary(o); err == nil {
		t.Error("invalid option should be rejected")
	}
}
