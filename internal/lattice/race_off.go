//go:build !race

package lattice

// raceEnabled reports whether the race detector is compiled in; the
// quad-vs-scalar parity sweep thins its deepest trees under race, where
// the instrumented sweeps run an order of magnitude slower.
const raceEnabled = false
