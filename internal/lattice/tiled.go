package lattice

// Cache tiling of the triangular reduction: the straight sweep streams
// the full (n+1)*4 stepsArray and ladder once per level — at the paper's
// 1024-step depth that is a 64 KiB working set revisited 1024 times,
// which lives in L2 rather than L1. The tiled variant walks the triangle
// in bands of tileLevels time steps and strips of tileCols columns, so
// one strip's values stay L1-resident across the whole band.
//
// Because the reduction consumes column k+1 of the level above, a strip
// descending a band needs up to tileLevels columns beyond its right
// edge — columns whose top-of-band values the *next* strip also needs
// pristine. Each strip therefore carries a private apron copy of those
// columns and re-derives their intermediate values, shrinking one column
// per level. The apron work is redundant across strips — the tiling
// trade-off: ~tileLevels/(2*tileCols) extra node visits (~12% at 64/256)
// in exchange for L1 locality. Every node still computes the exact
// operation sequence of the scalar reference (the redundant apron values
// are bit-identical recomputations), so tiling cannot move a result.
const (
	tileLevels = 64  // band height: time steps reduced per pass
	tileCols   = 256 // strip width: columns kept hot per pass (8 KiB/lane-set)
)

// ExecTiled runs the cache-tiled interleaved sweep. Results are
// bit-identical to Exec and to the scalar reference; the parity sweep
// asserts all three agree.
func (q *QuadPlan) ExecTiled() [4]float64 {
	if q.eng.single {
		q.tiledSingle()
	} else {
		q.tiledDouble()
	}
	var out [4]float64
	copy(out[:], q.steps[:4])
	return out
}

// tiledDouble is the double-precision banded sweep. Each strip level is
// a contiguous run (same kernel as the straight sweep) plus one
// boundary column fed from the apron; the apron itself advances with
// the same run kernel over its private copy.
//
//binopt:kernel quad tiled backward sweep (double precision)
func (q *QuadPlan) tiledDouble() {
	v, lad := q.steps, q.ladder
	var va, sa [tileLevels * 4]float64
	for tTop := q.n; tTop > 0; {
		h := tileLevels
		if h > tTop {
			h = tTop
		}
		tLo := tTop - h
		for k0 := 0; k0 <= tLo; k0 += tileCols {
			k1 := k0 + tileCols
			if k1 > tLo+1 {
				k1 = tLo + 1
			}
			// Private apron: top-of-band values of the h columns past the
			// strip's right edge, consumed as the strip descends.
			copy(va[:h*4], v[k1*4:(k1+h)*4])
			copy(sa[:h*4], lad[k1*4:(k1+h)*4])
			for dh := 1; dh <= h; dh++ {
				q.runDouble(v, lad, k0, k1-1)
				b := (k1 - 1) * 4
				q.nodeDouble(v[b:b+4:b+4], va[0:4:4], lad[b:b+4:b+4])
				// Advance the apron one level; it shrinks one column per
				// step down the band.
				q.runDouble(va[:], sa[:], 0, h-dh)
			}
		}
		tTop = tLo
	}
}

// tiledSingle is the single-precision banded sweep, rounding through
// float32 at exactly the scalar reference's points.
//
//binopt:kernel quad tiled backward sweep (single precision)
func (q *QuadPlan) tiledSingle() {
	v, lad := q.steps, q.ladder
	var va, sa [tileLevels * 4]float64
	for tTop := q.n; tTop > 0; {
		h := tileLevels
		if h > tTop {
			h = tTop
		}
		tLo := tTop - h
		for k0 := 0; k0 <= tLo; k0 += tileCols {
			k1 := k0 + tileCols
			if k1 > tLo+1 {
				k1 = tLo + 1
			}
			copy(va[:h*4], v[k1*4:(k1+h)*4])
			copy(sa[:h*4], lad[k1*4:(k1+h)*4])
			for dh := 1; dh <= h; dh++ {
				q.runSingle(v, lad, k0, k1-1)
				b := (k1 - 1) * 4
				q.nodeSingle(v[b:b+4:b+4], va[0:4:4], lad[b:b+4:b+4])
				q.runSingle(va[:], sa[:], 0, h-dh)
			}
		}
		tTop = tLo
	}
}

// nodeDouble reduces one boundary column whose up-neighbour lives in a
// separate buffer (the strip's apron). Same node arithmetic as
// runDouble.
//
//binopt:kernel quad boundary column reduction (double precision)
func (q *QuadPlan) nodeDouble(row, up, sl []float64) {
	for i := 0; i < 4; i++ {
		s := sl[i] * q.invD[i]
		sl[i] = s
		cont := float64(q.pu[i]*up[i]) + float64(q.pd[i]*row[i])
		if q.american[i] {
			var dd float64
			if q.isCall[i] {
				dd = s - q.strike[i]
			} else {
				dd = q.strike[i] - s
			}
			if dd > cont {
				cont = dd
			}
		}
		row[i] = cont
	}
}

// nodeSingle is nodeDouble in single precision. Same node arithmetic as
// runSingle.
//
//binopt:kernel quad boundary column reduction (single precision)
func (q *QuadPlan) nodeSingle(row, up, sl []float64) {
	for i := 0; i < 4; i++ {
		s := float64(float32(sl[i] * q.invD[i]))
		sl[i] = s
		u := float64(float32(q.pu[i] * up[i]))
		d := float64(float32(q.pd[i] * row[i]))
		cont := float64(float32(u + d))
		if q.american[i] {
			var dd float64
			if q.isCall[i] {
				dd = float64(float32(s - q.strike[i]))
			} else {
				dd = float64(float32(q.strike[i] - s))
			}
			if dd > cont {
				cont = dd
			}
		}
		row[i] = cont
	}
}
