// Package lattice implements binomial-tree option pricing by backward
// induction — the algorithm both OpenCL kernels in the paper accelerate —
// in three arithmetic flavours: the double-precision software reference
// (the paper's single-core C program), a single-precision variant, and a
// double-precision variant whose device-side leaf initialisation goes
// through an emulated FPGA Power operator (the source of the published
// RMSE ~1e-3).
package lattice

import (
	"fmt"
	"math"

	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// LeafInit selects where and how the tree leaves S(T,k) are produced,
// mirroring the paper's two kernel designs.
type LeafInit int

const (
	// LeafHost computes the leaves on the host with full-precision
	// iterated multiplication — kernel IV.A's approach ("the tree leaves
	// are computed by the host and then transferred to the device").
	LeafHost LeafInit = iota
	// LeafDevicePow computes each leaf on the device as
	// S0 * u^k * d^(N-k) through the engine's Power core — kernel IV.B's
	// approach ("the tree leaves are initialized in the device, a
	// work-item for each tree leaf").
	LeafDevicePow
)

// Engine prices options on a recombining binomial lattice. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	steps  int
	param  option.Parameterisation
	single bool
	leaf   LeafInit
	pow    hwmath.PowCore
}

// NewEngine returns a double-precision reference engine with host-side
// leaves — the configuration of the paper's reference software.
func NewEngine(steps int) (*Engine, error) {
	if steps < 1 {
		return nil, fmt.Errorf("lattice: need at least 1 step, got %d", steps)
	}
	return &Engine{
		steps: steps,
		param: option.CRR,
		leaf:  LeafHost,
		pow:   hwmath.Accurate13SP1,
	}, nil
}

// WithParameterisation switches the lattice parameterisation (CRR by
// default).
func (e *Engine) WithParameterisation(p option.Parameterisation) *Engine {
	c := *e
	c.param = p
	return &c
}

// WithSinglePrecision makes every arithmetic operation round to float32,
// modelling the single-precision kernel builds in Table II.
func (e *Engine) WithSinglePrecision() *Engine {
	c := *e
	c.single = true
	return &c
}

// WithDeviceLeaves makes the engine initialise leaves through the given
// Power core, as kernel IV.B does on the FPGA.
func (e *Engine) WithDeviceLeaves(pow hwmath.PowCore) *Engine {
	c := *e
	c.leaf = LeafDevicePow
	c.pow = pow
	return &c
}

// Steps returns the number of time discretisation steps N.
func (e *Engine) Steps() int { return e.steps }

// Price returns the lattice value of the option. One-shot callers pay a
// plan allocation per call; batch and Greeks paths hold a Plan and reuse
// it.
func (e *Engine) Price(o option.Option) (float64, error) {
	p, err := e.NewPlan(o)
	if err != nil {
		return 0, err
	}
	return p.Exec(), nil
}

// payoff is the exercise value in the engine's working precision; the
// caller pre-rounds s and k.
func payoff(r option.Right, s, k float64) float64 {
	if r == option.Call {
		return math.Max(s-k, 0)
	}
	return math.Max(k-s, 0)
}
