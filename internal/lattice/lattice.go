// Package lattice implements binomial-tree option pricing by backward
// induction — the algorithm both OpenCL kernels in the paper accelerate —
// in three arithmetic flavours: the double-precision software reference
// (the paper's single-core C program), a single-precision variant, and a
// double-precision variant whose device-side leaf initialisation goes
// through an emulated FPGA Power operator (the source of the published
// RMSE ~1e-3).
package lattice

import (
	"fmt"
	"math"

	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// LeafInit selects where and how the tree leaves S(T,k) are produced,
// mirroring the paper's two kernel designs.
type LeafInit int

const (
	// LeafHost computes the leaves on the host with full-precision
	// iterated multiplication — kernel IV.A's approach ("the tree leaves
	// are computed by the host and then transferred to the device").
	LeafHost LeafInit = iota
	// LeafDevicePow computes each leaf on the device as
	// S0 * u^k * d^(N-k) through the engine's Power core — kernel IV.B's
	// approach ("the tree leaves are initialized in the device, a
	// work-item for each tree leaf").
	LeafDevicePow
)

// Engine prices options on a recombining binomial lattice. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	steps  int
	param  option.Parameterisation
	single bool
	leaf   LeafInit
	pow    hwmath.PowCore
}

// NewEngine returns a double-precision reference engine with host-side
// leaves — the configuration of the paper's reference software.
func NewEngine(steps int) (*Engine, error) {
	if steps < 1 {
		return nil, fmt.Errorf("lattice: need at least 1 step, got %d", steps)
	}
	return &Engine{
		steps: steps,
		param: option.CRR,
		leaf:  LeafHost,
		pow:   hwmath.Accurate13SP1,
	}, nil
}

// WithParameterisation switches the lattice parameterisation (CRR by
// default).
func (e *Engine) WithParameterisation(p option.Parameterisation) *Engine {
	c := *e
	c.param = p
	return &c
}

// WithSinglePrecision makes every arithmetic operation round to float32,
// modelling the single-precision kernel builds in Table II.
func (e *Engine) WithSinglePrecision() *Engine {
	c := *e
	c.single = true
	return &c
}

// WithDeviceLeaves makes the engine initialise leaves through the given
// Power core, as kernel IV.B does on the FPGA.
func (e *Engine) WithDeviceLeaves(pow hwmath.PowCore) *Engine {
	c := *e
	c.leaf = LeafDevicePow
	c.pow = pow
	return &c
}

// Steps returns the number of time discretisation steps N.
func (e *Engine) Steps() int { return e.steps }

// Price returns the lattice value of the option.
func (e *Engine) Price(o option.Option) (float64, error) {
	v, _, err := e.priceRetain(o, 0)
	return v, err
}

// priceRetain runs backward induction and additionally returns the node
// values of the first `retain` time levels (levels 0..retain-1, each level
// t holding t+1 values). The Greeks computation needs levels 0..2.
func (e *Engine) priceRetain(o option.Option, retain int) (float64, [][]float64, error) {
	lp, err := option.NewLatticeParams(o, e.steps, e.param)
	if err != nil {
		return 0, nil, err
	}
	n := lp.Steps

	rnd := func(x float64) float64 { return x }
	if e.single {
		rnd = func(x float64) float64 { return float64(float32(x)) }
	}

	d := rnd(lp.D)
	pu, pd := rnd(lp.Pu), rnd(lp.Pd)
	strike := rnd(o.Strike)

	// Leaf asset prices.
	var s []float64
	switch e.leaf {
	case LeafDevicePow:
		// One Power-core evaluation per leaf, like kernel IV.B's
		// per-work-item initialisation.
		s = DeviceLeafPrices(o.Spot, lp, e.pow, e.single)
	default:
		// Host-side leaves, like kernel IV.A.
		s = HostLeafPrices(o.Spot, lp, e.param, e.single)
	}

	// Leaf option values.
	v := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		v[k] = rnd(payoff(o.Right, s[k], strike))
	}

	var kept [][]float64
	if retain > 0 {
		kept = make([][]float64, retain)
	}

	american := o.Style == option.American
	invD := rnd(1 / d)
	for t := n - 1; t >= 0; t-- {
		// Asset prices at level t from level t+1: S(t,k) = S(t+1,k)/d.
		// Continuation and early exercise per node.
		for k := 0; k <= t; k++ {
			s[k] = rnd(s[k] * invD)
			cont := rnd(rnd(pu*v[k+1]) + rnd(pd*v[k]))
			if american {
				if ex := rnd(payoff(o.Right, s[k], strike)); ex > cont {
					cont = ex
				}
			}
			v[k] = cont
		}
		if t < retain {
			level := make([]float64, t+1)
			copy(level, v[:t+1])
			kept[t] = level
		}
	}
	return v[0], kept, nil
}

// payoff is the exercise value in the engine's working precision; the
// caller pre-rounds s and k.
func payoff(r option.Right, s, k float64) float64 {
	if r == option.Call {
		return math.Max(s-k, 0)
	}
	return math.Max(k-s, 0)
}
