package lattice

import (
	"fmt"
	"math"

	"binopt/internal/option"
)

// TrinomialEngine prices on the Boyle (1986) trinomial lattice: each
// step the asset moves up by exp(sigma*sqrt(2 dt)), down by its inverse,
// or stays. The extra middle branch roughly halves the depth needed for
// a given accuracy versus the binomial tree — one of the tree-family
// alternatives the solver survey ([12]) weighs against CRR, included
// here as a documented extension.
type TrinomialEngine struct {
	steps int
}

// NewTrinomialEngine returns a trinomial engine with the given depth.
func NewTrinomialEngine(steps int) (*TrinomialEngine, error) {
	if steps < 1 {
		return nil, fmt.Errorf("lattice: trinomial needs at least 1 step, got %d", steps)
	}
	return &TrinomialEngine{steps: steps}, nil
}

// Steps returns the configured depth.
func (e *TrinomialEngine) Steps() int { return e.steps }

// Price values the option by trinomial backward induction.
func (e *TrinomialEngine) Price(o option.Option) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	n := e.steps
	dt := o.T / float64(n)
	u := math.Exp(o.Sigma * math.Sqrt(2*dt))
	d := 1 / u

	eHalf := math.Exp((o.Rate - o.Div) * dt / 2)
	up := math.Exp(o.Sigma * math.Sqrt(dt/2))
	dn := 1 / up
	denom := up - dn
	pu := (eHalf - dn) / denom
	pu *= pu
	pd := (up - eHalf) / denom
	pd *= pd
	pm := 1 - pu - pd
	if pu <= 0 || pd <= 0 || pm <= 0 {
		return 0, fmt.Errorf("lattice: trinomial probabilities degenerate (pu=%v pm=%v pd=%v); increase steps", pu, pm, pd)
	}
	disc := math.Exp(-o.Rate * dt)

	// Leaves: 2n+1 nodes, price S0 * u^(j-n) for j in [0, 2n].
	width := 2*n + 1
	s := make([]float64, width)
	v := make([]float64, width)
	s[0] = o.Spot * math.Pow(d, float64(n))
	for j := 1; j < width; j++ {
		s[j] = s[j-1] * u
	}
	for j := 0; j < width; j++ {
		v[j] = o.Payoff(s[j])
	}

	american := o.Style == option.American
	for t := n - 1; t >= 0; t-- {
		levelWidth := 2*t + 1
		// At level t, node j (0..2t) has price S0*u^(j-t), which equals
		// the level-(t+1) node j+1's price: reuse s shifted by one.
		for j := 0; j < levelWidth; j++ {
			cont := disc * (pd*v[j] + pm*v[j+1] + pu*v[j+2])
			if american {
				if ex := o.Payoff(s[j+n-t]); ex > cont {
					cont = ex
				}
			}
			v[j] = cont
		}
	}
	return v[0], nil
}
