package lattice

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"binopt/internal/option"
)

// PriceAndGreeksBatch prices every option in opts with full
// sensitivities and returns values and Greeks in the same order.
// workers limits the number of goroutines; workers <= 0 uses
// GOMAXPROCS.
//
// Each option costs one scalar retained sweep (price, delta, gamma and
// — under CRR — theta straight from the first tree levels) plus ONE
// quad-interleaved sweep carrying all four bump contracts: vega up,
// vega down, rho up, rho down share a single QuadPlan pass instead of
// four scalar re-executions. That turns the five scalar sweeps of
// PriceAndGreeks into roughly 1.6 sweep-equivalents per position, which
// is how the quad speedup reaches book revaluation. Every worker owns
// one reusable scalar Plan and one QuadPlan, so a steady batch
// allocates only the retained levels per option.
//
// Results are bit-identical to calling PriceAndGreeks per option: the
// quad lanes run the scalar reference's exact operation sequence, and
// the finite-difference quotients are formed from the same values in
// the same order. The parity sweep in greeksbatch_test.go pins that.
//
// On the first error the dispatcher stops handing out new options and
// the error names the failing contract, not just its index.
func (e *Engine) PriceAndGreeksBatch(opts []option.Option, workers int) ([]float64, []Greeks, error) {
	out, gs, _, err := e.priceAndGreeksBatch(opts, workers)
	return out, gs, err
}

// priceAndGreeksBatch additionally reports how many options were
// actually evaluated, which the early-stop regression test pins.
func (e *Engine) priceAndGreeksBatch(opts []option.Option, workers int) ([]float64, []Greeks, int64, error) {
	out := make([]float64, len(opts))
	gs := make([]Greeks, len(opts))
	if len(opts) == 0 {
		return out, gs, 0, nil
	}
	if e.steps < 2 {
		return nil, nil, 0, fmt.Errorf("lattice: greeks need at least 2 steps, got %d", e.steps)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(opts) {
		workers = len(opts)
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		failed    atomic.Bool
		evaluated atomic.Int64
	)
	stop := make(chan struct{})
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("lattice: option %d (%v): %w", i, opts[i], err)
			failed.Store(true)
			close(stop)
		}
		mu.Unlock()
	}

	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sp *Plan
			var qp *QuadPlan
			for i := range next {
				if failed.Load() {
					continue // drain doomed work without pricing it
				}
				evaluated.Add(1)
				if qp == nil {
					qp = e.NewQuadPlan()
				}
				price, g, err := e.greeksWithScratch(&sp, qp, opts[i])
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = price
				gs[i] = g
			}
		}()
	}

feed:
	for i := range opts {
		select {
		case next <- i:
		case <-stop:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, evaluated.Load(), firstErr
	}
	return out, gs, evaluated.Load(), nil
}

// greeksWithScratch is one position's evaluation on a worker's reusable
// scratch: a retained scalar sweep for the level-derived sensitivities,
// then the four vega/rho bump contracts through one quad sweep. The
// arithmetic mirrors PriceAndGreeks expression for expression so the
// two paths agree bit-for-bit.
func (e *Engine) greeksWithScratch(sp **Plan, qp *QuadPlan, o option.Option) (float64, Greeks, error) {
	var err error
	if *sp == nil {
		*sp, err = e.NewPlan(o)
	} else {
		err = (*sp).Reset(o)
	}
	if err != nil {
		return 0, Greeks{}, err
	}
	p := *sp
	lp := p.Params()
	price, kept := p.ExecRetain(3)
	v0, v1, v2 := kept[0], kept[1], kept[2]

	s10 := o.Spot * lp.D
	s11 := o.Spot * lp.U
	s20 := o.Spot * lp.D * lp.D
	s21 := o.Spot * lp.U * lp.D
	s22 := o.Spot * lp.U * lp.U

	var g Greeks
	g.Delta = (v1[1] - v1[0]) / (s11 - s10)
	dUp := (v2[2] - v2[1]) / (s22 - s21)
	dDn := (v2[1] - v2[0]) / (s21 - s20)
	g.Gamma = (dUp - dDn) / (0.5 * (s22 - s20))

	if e.param == option.CRR {
		// S(2,1) == S0 exactly under CRR, so V(2,1) is the option value
		// two steps later at the same spot.
		g.Theta = (v2[1] - v0[0]) / (2 * lp.Dt)
	} else {
		bumped := o
		bumped.T -= 2 * lp.Dt
		if err := p.Reset(bumped); err != nil {
			return 0, Greeks{}, err
		}
		g.Theta = (p.Exec() - price) / (2 * lp.Dt)
	}

	// The four central-difference bump contracts ride one interleaved
	// sweep; each lane is bit-identical to the scalar Reset+Exec it
	// replaces, so the quotients match centralDiff exactly.
	const hSigma, hRate = 1e-3, 1e-4
	vu, vd, ru, rd := o, o, o, o
	vu.Sigma += hSigma
	vd.Sigma -= hSigma
	ru.Rate += hRate
	rd.Rate -= hRate
	lane, err := qp.load([]option.Option{vu, vd, ru, rd})
	if err != nil {
		return 0, Greeks{}, fmt.Errorf("greeks bump lane %d: %w", lane, err)
	}
	res := qp.Exec()
	g.Vega = (res[0] - res[1]) / (2 * hSigma)
	g.Rho = (res[2] - res[3]) / (2 * hRate)
	return price, g, nil
}
