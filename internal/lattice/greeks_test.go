package lattice

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/mathx"
	"binopt/internal/option"
)

func TestGreeksAgainstBlackScholes(t *testing.T) {
	// European tree Greeks must approach the analytic ones.
	o := amPut()
	o.Style = option.European
	e := mustEngine(t, 2048)
	price, g, err := e.PriceAndGreeks(o)
	if err != nil {
		t.Fatal(err)
	}
	refPrice, refG, err := bs.PriceAndGreeks(o)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(price, refPrice, 0.01, 0.01) {
		t.Errorf("price %v vs bs %v", price, refPrice)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"delta", g.Delta, refG.Delta, 0.01},
		{"gamma", g.Gamma, refG.Gamma, 0.01},
		{"theta", g.Theta, refG.Theta, 0.05},
		{"vega", g.Vega, refG.Vega, 0.5},
		{"rho", g.Rho, refG.Rho, 0.5},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %v, bs = %v (tol %v)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestAmericanPutGreeksSigns(t *testing.T) {
	e := mustEngine(t, 512)
	_, g, err := e.PriceAndGreeks(amPut())
	if err != nil {
		t.Fatal(err)
	}
	if g.Delta >= 0 {
		t.Errorf("put delta = %v, want negative", g.Delta)
	}
	if g.Gamma <= 0 {
		t.Errorf("gamma = %v, want positive", g.Gamma)
	}
	if g.Vega <= 0 {
		t.Errorf("vega = %v, want positive", g.Vega)
	}
	if g.Theta >= 0 {
		t.Errorf("theta = %v, want negative for this contract", g.Theta)
	}
}

func TestGreeksNeedTwoSteps(t *testing.T) {
	e := mustEngine(t, 1)
	if _, _, err := e.PriceAndGreeks(amPut()); err == nil {
		t.Error("1-step greeks should fail")
	}
}

func TestGreeksNonCRRTheta(t *testing.T) {
	// The Jarrow-Rudd path exercises the reprice-based theta.
	e := mustEngine(t, 512).WithParameterisation(option.JarrowRudd)
	_, g, err := e.PriceAndGreeks(amPut())
	if err != nil {
		t.Fatal(err)
	}
	eCRR := mustEngine(t, 512)
	_, gCRR, err := eCRR.PriceAndGreeks(amPut())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Theta-gCRR.Theta) > 0.5 {
		t.Errorf("JR theta %v too far from CRR theta %v", g.Theta, gCRR.Theta)
	}
}

func TestGreeksValidate(t *testing.T) {
	e := mustEngine(t, 64)
	bad := amPut()
	bad.Spot = 0
	if _, _, err := e.PriceAndGreeks(bad); err == nil {
		t.Error("invalid option should be rejected")
	}
}
