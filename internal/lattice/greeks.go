package lattice

import (
	"fmt"

	"binopt/internal/option"
)

// Greeks are the sensitivities extracted from a single lattice run plus
// two bump-and-reprice evaluations (vega, rho). Delta, gamma and theta
// come directly from the first tree levels, the standard technique for
// lattice pricers.
type Greeks struct {
	Delta float64
	Gamma float64
	Theta float64
	Vega  float64
	Rho   float64
}

// PriceAndGreeks returns the option value and its sensitivities. Theta
// from the tree requires the CRR parameterisation (it relies on the level-2
// middle node recombining to the spot); other parameterisations get theta
// via repricing.
//
// All bump evaluations share one Plan: the base contract is planned
// once, and each bump re-derives only what its perturbation touches into
// the same buffers (a rho bump under CRR keeps the leaf ladder and
// payoff table — see Plan.Reset). No lattice buffer is allocated per
// bump.
func (e *Engine) PriceAndGreeks(o option.Option) (float64, Greeks, error) {
	if e.steps < 2 {
		return 0, Greeks{}, fmt.Errorf("lattice: greeks need at least 2 steps, got %d", e.steps)
	}
	p, err := e.NewPlan(o)
	if err != nil {
		return 0, Greeks{}, err
	}
	lp := p.Params()
	price, kept := p.ExecRetain(3)
	v0, v1, v2 := kept[0], kept[1], kept[2]

	s10 := o.Spot * lp.D
	s11 := o.Spot * lp.U
	s20 := o.Spot * lp.D * lp.D
	s21 := o.Spot * lp.U * lp.D
	s22 := o.Spot * lp.U * lp.U

	var g Greeks
	g.Delta = (v1[1] - v1[0]) / (s11 - s10)
	dUp := (v2[2] - v2[1]) / (s22 - s21)
	dDn := (v2[1] - v2[0]) / (s21 - s20)
	g.Gamma = (dUp - dDn) / (0.5 * (s22 - s20))

	if e.param == option.CRR {
		// S(2,1) == S0 exactly under CRR, so V(2,1) is the option value
		// two steps later at the same spot.
		g.Theta = (v2[1] - v0[0]) / (2 * lp.Dt)
	} else {
		bumped := o
		bumped.T -= 2 * lp.Dt
		if err := p.Reset(bumped); err != nil {
			return 0, Greeks{}, err
		}
		g.Theta = (p.Exec() - price) / (2 * lp.Dt)
	}

	// Vega and rho by central bump-and-reprice on the shared plan.
	const hSigma, hRate = 1e-3, 1e-4
	g.Vega, err = centralDiff(p, o, hSigma, func(x *option.Option, d float64) { x.Sigma += d })
	if err != nil {
		return 0, Greeks{}, err
	}
	g.Rho, err = centralDiff(p, o, hRate, func(x *option.Option, d float64) { x.Rate += d })
	if err != nil {
		return 0, Greeks{}, err
	}
	return price, g, nil
}

// centralDiff evaluates (V(o+h) - V(o-h)) / 2h on the shared plan; each
// bump is a Reset, not a fresh lattice.
func centralDiff(p *Plan, o option.Option, h float64, mutate func(*option.Option, float64)) (float64, error) {
	up, dn := o, o
	mutate(&up, h)
	mutate(&dn, -h)
	if err := p.Reset(up); err != nil {
		return 0, err
	}
	vu := p.Exec()
	if err := p.Reset(dn); err != nil {
		return 0, err
	}
	vd := p.Exec()
	return (vu - vd) / (2 * h), nil
}
