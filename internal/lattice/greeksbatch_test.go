package lattice

import (
	"strings"
	"testing"

	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// mixedBook builds a deterministic chain spanning rights × styles with
// varied strikes and vols, the shape book revaluation sees.
func mixedBook(n int) []option.Option {
	opts := make([]option.Option, n)
	for i := range opts {
		o := amPut()
		o.Strike = 85 + float64(i%40)
		o.Sigma = 0.12 + 0.002*float64(i%80)
		o.T = 0.25 + 0.05*float64(i%8)
		if i%2 == 1 {
			o.Right = option.Call
		}
		if i%3 == 2 {
			o.Style = option.European
		}
		opts[i] = o
	}
	return opts
}

// TestPriceAndGreeksBatchParity pins the batch path bit-identical to the
// per-option scalar PriceAndGreeks reference across rights, styles,
// parameterisations (exercising both theta branches) and precisions.
func TestPriceAndGreeksBatchParity(t *testing.T) {
	opts := mixedBook(37)
	engines := map[string]*Engine{
		"crr-double":   mustEngine(t, 96),
		"crr-single":   mustEngine(t, 96).WithSinglePrecision(),
		"jr-double":    mustEngine(t, 96).WithParameterisation(option.JarrowRudd),
		"tian-double":  mustEngine(t, 64).WithParameterisation(option.Tian),
		"crr-devleaf":  mustEngine(t, 64).WithDeviceLeaves(defaultPow(t)),
		"crr-double33": mustEngine(t, 33),
	}
	for name, e := range engines {
		for _, workers := range []int{1, 4} {
			prices, greeks, err := e.PriceAndGreeksBatch(opts, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i, o := range opts {
				refP, refG, err := e.PriceAndGreeks(o)
				if err != nil {
					t.Fatalf("%s reference %d: %v", name, i, err)
				}
				if prices[i] != refP {
					t.Fatalf("%s workers=%d option %d price: %v != %v", name, workers, i, prices[i], refP)
				}
				if greeks[i] != refG {
					t.Fatalf("%s workers=%d option %d greeks: %+v != %+v", name, workers, i, greeks[i], refG)
				}
			}
		}
	}
}

func defaultPow(t *testing.T) hwmath.PowCore {
	t.Helper()
	return mustEngine(t, 2).pow
}

func TestPriceAndGreeksBatchEmpty(t *testing.T) {
	e := mustEngine(t, 16)
	prices, greeks, err := e.PriceAndGreeksBatch(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 0 || len(greeks) != 0 {
		t.Errorf("got %d prices, %d greeks", len(prices), len(greeks))
	}
}

func TestPriceAndGreeksBatchNeedsTwoSteps(t *testing.T) {
	e := mustEngine(t, 1)
	if _, _, err := e.PriceAndGreeksBatch(mixedBook(2), 1); err == nil {
		t.Error("1-step engine should refuse greeks")
	}
}

// TestPriceAndGreeksBatchErrorIdentity pins that the error names the
// failing contract itself, not just its index.
func TestPriceAndGreeksBatchErrorIdentity(t *testing.T) {
	e := mustEngine(t, 16)
	opts := mixedBook(9)
	opts[5].Sigma = -0.5
	_, _, err := e.PriceAndGreeksBatch(opts, 2)
	if err == nil {
		t.Fatal("invalid option should surface an error")
	}
	if !strings.Contains(err.Error(), "option 5") {
		t.Errorf("error should name the index: %v", err)
	}
	if !strings.Contains(err.Error(), opts[5].String()) {
		t.Errorf("error should carry the contract identity %q: %v", opts[5].String(), err)
	}
}

// TestPriceAndGreeksBatchStopsDispatch pins the early-stop regression:
// once an error is recorded, workers drain the remaining options without
// evaluating them.
func TestPriceAndGreeksBatchStopsDispatch(t *testing.T) {
	e := mustEngine(t, 256)
	opts := mixedBook(64)
	opts[0].Sigma = -1 // fails at plan time, before any sweep
	_, _, evaluated, err := e.priceAndGreeksBatch(opts, 1)
	if err == nil {
		t.Fatal("expected an error")
	}
	if evaluated >= int64(len(opts)) {
		t.Errorf("dispatcher kept feeding a doomed batch: evaluated %d of %d", evaluated, len(opts))
	}
}
