package lattice

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/option"
)

func TestLeisenReimerBeatsCRROnEuropean(t *testing.T) {
	// LR's O(1/N^2) convergence should crush CRR at equal step counts
	// across a strike sweep.
	o := amPut()
	o.Style = option.European
	var crrErr, lrErr float64
	for i := 0; i < 7; i++ {
		oo := o
		oo.Strike = 85 + 5*float64(i)
		ref, err := bs.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		crr := mustEngine(t, 101)
		vc, err := crr.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		lr := mustEngine(t, 101).WithParameterisation(option.LeisenReimer)
		vl, err := lr.Price(oo)
		if err != nil {
			t.Fatal(err)
		}
		crrErr += math.Abs(vc - ref)
		lrErr += math.Abs(vl - ref)
	}
	if lrErr*5 > crrErr {
		t.Errorf("LR mean error %g not clearly below CRR %g", lrErr/7, crrErr/7)
	}
	if lrErr/7 > 1e-3 {
		t.Errorf("LR mean error %g too large at N=101", lrErr/7)
	}
}

func TestLeisenReimerAmericanMatchesDeepCRR(t *testing.T) {
	o := amPut()
	lr := mustEngine(t, 255).WithParameterisation(option.LeisenReimer)
	vl, err := lr.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	crr := mustEngine(t, 8191)
	vc, err := crr.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vl-vc) > 2e-3 {
		t.Errorf("LR(255) %v vs CRR(8191) %v", vl, vc)
	}
}

func TestLeisenReimerEvenStepsRejected(t *testing.T) {
	o := amPut()
	lr := mustEngine(t, 100).WithParameterisation(option.LeisenReimer)
	if _, err := lr.Price(o); err == nil {
		t.Error("even steps should be rejected for LR")
	}
}
