package lattice

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"binopt/internal/hwmath"
	"binopt/internal/option"
)

// quadChain builds four distinct contracts of the given right and style,
// spread across moneyness and vol so the four lanes exercise different
// early-exercise boundaries inside one shared sweep.
func quadChain(right option.Right, style option.Style) []option.Option {
	base := option.Option{
		Right: right, Style: style,
		Spot: 100, Strike: 105, Rate: 0.03, Div: 0.01, Sigma: 0.2, T: 0.5,
	}
	opts := make([]option.Option, 4)
	for i := range opts {
		o := base
		o.Spot = 80 + 15*float64(i)
		o.Strike = 70 + 20*float64(i)
		o.Sigma = 0.15 + 0.08*float64(i)
		o.T = 0.25 + 0.5*float64(i)
		opts[i] = o
	}
	return opts
}

// quadEngine builds the engine variant for one parity case.
func quadEngine(t *testing.T, steps int, single, deviceLeaves bool) *Engine {
	t.Helper()
	e := mustEngine(t, steps)
	if single {
		e = e.WithSinglePrecision()
	}
	if deviceLeaves {
		e = e.WithDeviceLeaves(hwmath.Accurate13SP1)
	}
	return e
}

// TestQuadScalarBitParity is the central invariant of the quad refactor:
// the interleaved sweep — straight and tiled — reproduces the scalar
// reference bit for bit across rights, styles, depths, precisions and
// leaf-initialisation modes. Under the race detector the two deepest
// trees run a single right/style combination to keep the instrumented
// sweep affordable; the plain CI pass covers the full table.
func TestQuadScalarBitParity(t *testing.T) {
	depths := []int{15, 512, 1024, 2047}
	for _, steps := range depths {
		for _, right := range []option.Right{option.Call, option.Put} {
			for _, style := range []option.Style{option.European, option.American} {
				if raceEnabled && steps >= 1024 && !(right == option.Put && style == option.American) {
					continue
				}
				for _, single := range []bool{false, true} {
					for _, device := range []bool{false, true} {
						name := fmt.Sprintf("n=%d/%v/%v/single=%v/device=%v", steps, right, style, single, device)
						t.Run(name, func(t *testing.T) {
							e := quadEngine(t, steps, single, device)
							opts := quadChain(right, style)

							want := make([]float64, 4)
							for i, o := range opts {
								v, err := e.Price(o)
								if err != nil {
									t.Fatal(err)
								}
								want[i] = v
							}

							qp := e.NewQuadPlan()
							if err := qp.Load(opts); err != nil {
								t.Fatal(err)
							}
							straight := qp.Exec()
							if err := qp.Load(opts); err != nil {
								t.Fatal(err)
							}
							tiled := qp.ExecTiled()

							for i := range opts {
								if math.Float64bits(straight[i]) != math.Float64bits(want[i]) {
									t.Errorf("lane %d straight: %v (%#x) != scalar %v (%#x)",
										i, straight[i], math.Float64bits(straight[i]), want[i], math.Float64bits(want[i]))
								}
								if math.Float64bits(tiled[i]) != math.Float64bits(want[i]) {
									t.Errorf("lane %d tiled: %v (%#x) != scalar %v (%#x)",
										i, tiled[i], math.Float64bits(tiled[i]), want[i], math.Float64bits(want[i]))
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestQuadRemainderGroups pins the batch pricer's scalar fallback: batch
// sizes 1–5 cover no-full-quad, exactly-one-quad, and quad-plus-
// remainder dispatch, in both precisions.
func TestQuadRemainderGroups(t *testing.T) {
	for _, single := range []bool{false, true} {
		e := quadEngine(t, 257, single, false)
		all := chainOf(5)
		for size := 1; size <= 5; size++ {
			opts := all[:size]
			want := make([]float64, size)
			for i, o := range opts {
				v, err := e.Price(o)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = v
			}
			for _, workers := range []int{1, 3} {
				got, err := e.PriceBatch(opts, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Errorf("single=%v size=%d workers=%d option %d: %v != %v",
							single, size, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestQuadPlanShortLoad pins the lane-mirroring contract: loading fewer
// than four options still executes, active lanes match scalar, and the
// mirrored tail repeats lane 0.
func TestQuadPlanShortLoad(t *testing.T) {
	e := mustEngine(t, 64)
	opts := quadChain(option.Put, option.American)[:2]
	qp := e.NewQuadPlan()
	if err := qp.Load(opts); err != nil {
		t.Fatal(err)
	}
	res := qp.Exec()
	for i, o := range opts {
		want, err := e.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res[i]) != math.Float64bits(want) {
			t.Errorf("lane %d: %v != %v", i, res[i], want)
		}
	}
	if math.Float64bits(res[2]) != math.Float64bits(res[0]) || math.Float64bits(res[3]) != math.Float64bits(res[0]) {
		t.Errorf("mirrored lanes diverge from lane 0: %v", res)
	}
}

// TestQuadPlanLoadRejects pins Load's argument contract and the error
// lane naming.
func TestQuadPlanLoadRejects(t *testing.T) {
	e := mustEngine(t, 16)
	qp := e.NewQuadPlan()
	if err := qp.Load(nil); err == nil {
		t.Error("empty load should fail")
	}
	if err := qp.Load(make([]option.Option, 5)); err == nil {
		t.Error("five-lane load should fail")
	}
	opts := quadChain(option.Put, option.American)
	opts[2].Sigma = -1
	err := qp.Load(opts)
	if err == nil {
		t.Fatal("invalid lane should fail the load")
	}
	if !strings.Contains(err.Error(), "lane 2") {
		t.Errorf("error should name lane 2, got %q", err)
	}
}

// TestPriceBatchStopsAfterError is the early-stop regression: once a
// group fails, the dispatcher must stop handing out indices and the
// workers must drain the rest without pricing doomed work.
func TestPriceBatchStopsAfterError(t *testing.T) {
	e := mustEngine(t, 64)
	opts := chainOf(4096)
	opts[0].Sigma = -1 // first quad group fails immediately

	out, priced, err := e.priceBatch(opts, 1)
	if err == nil {
		t.Fatal("batch with an invalid option should fail")
	}
	if out != nil {
		t.Errorf("failed batch should return nil results")
	}
	if !strings.Contains(err.Error(), "option 0") {
		t.Errorf("error should name option 0, got %q", err)
	}
	if priced != 1 {
		t.Errorf("single worker priced %d groups after the failure; early-stop should cap it at 1", priced)
	}

	// Multi-worker: a few in-flight groups may complete, but the 1024
	// groups must not all be priced.
	_, priced, err = e.priceBatch(opts, 4)
	if err == nil {
		t.Fatal("batch with an invalid option should fail")
	}
	if priced > 64 {
		t.Errorf("4 workers priced %d of 1024 groups after an immediate failure; dispatch did not stop", priced)
	}
}
