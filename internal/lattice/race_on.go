//go:build race

package lattice

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
