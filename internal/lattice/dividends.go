package lattice

import (
	"fmt"
	"math"
	"sort"

	"binopt/internal/option"
)

// Dividend is one discrete cash payment: Amount paid at time T (years
// from now).
type Dividend struct {
	T      float64
	Amount float64
}

// PriceWithDividends values the option with a discrete dividend schedule
// under the escrowed-dividend model: the lattice evolves the spot net of
// the present value of all dividends paid during the option's life, and
// the exercise value at each node adds back the present value of the
// dividends not yet paid at that time. The model keeps the tree
// recombining (exact discrete-dividend trees do not recombine) and is
// the standard production approximation for American equity options.
func (e *Engine) PriceWithDividends(o option.Option, divs []Dividend) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	schedule, pv0, err := normalizeDividends(o, divs)
	if err != nil {
		return 0, err
	}
	if len(schedule) == 0 {
		return e.Price(o)
	}
	if pv0 >= o.Spot {
		return 0, fmt.Errorf("lattice: dividend present value %v exceeds the spot %v", pv0, o.Spot)
	}

	// The escrowed process prices the net spot.
	net := o
	net.Spot = o.Spot - pv0
	lp, err := option.NewLatticeParams(net, e.steps, e.param)
	if err != nil {
		return 0, err
	}
	n := lp.Steps

	// remainingPV[t] is the present value, as seen at time t*dt, of the
	// dividends still unpaid.
	remainingPV := make([]float64, n+1)
	for t := 0; t <= n; t++ {
		tt := float64(t) * lp.Dt
		var pv float64
		for _, d := range schedule {
			if d.T > tt {
				pv += d.Amount * math.Exp(-o.Rate*(d.T-tt))
			}
		}
		remainingPV[t] = pv
	}

	s := HostLeafPrices(net.Spot, lp, e.param, e.single)
	v := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		// At expiry all scheduled dividends have been paid (dividends at
		// or after expiry are excluded by normalizeDividends).
		v[k] = o.Payoff(s[k])
	}

	american := o.Style == option.American
	invD := 1 / lp.D
	for t := n - 1; t >= 0; t-- {
		for k := 0; k <= t; k++ {
			s[k] *= invD
			cont := lp.Pu*v[k+1] + lp.Pd*v[k]
			if american {
				// The exercisable (cum-dividend) spot re-adds the escrow.
				if ex := o.Payoff(s[k] + remainingPV[t]); ex > cont {
					cont = ex
				}
			}
			v[k] = cont
		}
	}
	return v[0], nil
}

// normalizeDividends validates and sorts the schedule, dropping payments
// outside (0, T), and returns it with the total present value at t=0.
func normalizeDividends(o option.Option, divs []Dividend) ([]Dividend, float64, error) {
	var out []Dividend
	for i, d := range divs {
		switch {
		case math.IsNaN(d.Amount) || d.Amount < 0:
			return nil, 0, fmt.Errorf("lattice: dividend %d has invalid amount %v", i, d.Amount)
		case math.IsNaN(d.T):
			return nil, 0, fmt.Errorf("lattice: dividend %d has invalid time %v", i, d.T)
		case d.Amount == 0 || d.T <= 0 || d.T >= o.T:
			continue // outside the option's life: no effect on the tree
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	var pv float64
	for _, d := range out {
		pv += d.Amount * math.Exp(-o.Rate*d.T)
	}
	return out, pv, nil
}
