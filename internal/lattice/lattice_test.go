package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"binopt/internal/bs"
	"binopt/internal/hwmath"
	"binopt/internal/mathx"
	"binopt/internal/option"
)

func amPut() option.Option {
	return option.Option{
		Right:  option.Put,
		Style:  option.American,
		Spot:   100,
		Strike: 105,
		Rate:   0.03,
		Sigma:  0.2,
		T:      0.5,
	}
}

func mustEngine(t *testing.T, steps int) *Engine {
	t.Helper()
	e, err := NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineRejectsBadSteps(t *testing.T) {
	if _, err := NewEngine(0); err == nil {
		t.Error("NewEngine(0) should fail")
	}
	if _, err := NewEngine(-5); err == nil {
		t.Error("NewEngine(-5) should fail")
	}
}

func TestPriceValidatesOption(t *testing.T) {
	e := mustEngine(t, 16)
	bad := amPut()
	bad.Sigma = -1
	if _, err := e.Price(bad); err == nil {
		t.Error("invalid option should be rejected")
	}
}

func TestSingleStepTreeByHand(t *testing.T) {
	// One-step European call computed by hand: V = disc*(p*Vu + (1-p)*Vd).
	o := option.Option{
		Right: option.Call, Style: option.European,
		Spot: 100, Strike: 100, Rate: 0.05, Sigma: 0.2, T: 1,
	}
	lp, err := option.NewLatticeParams(o, 1, option.CRR)
	if err != nil {
		t.Fatal(err)
	}
	want := lp.Pu*math.Max(100*lp.U-100, 0) + lp.Pd*math.Max(100*lp.D-100, 0)

	e := mustEngine(t, 1)
	got, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, want, 1e-12, 1e-12) {
		t.Errorf("1-step price = %.15g, want %.15g", got, want)
	}
}

func TestEuropeanConvergesToBlackScholes(t *testing.T) {
	for _, right := range []option.Right{option.Call, option.Put} {
		o := amPut()
		o.Style = option.European
		o.Right = right
		ref, err := bs.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for _, n := range []int{64, 256, 1024} {
			e := mustEngine(t, n)
			got, err := e.Price(o)
			if err != nil {
				t.Fatal(err)
			}
			errAbs := math.Abs(got - ref)
			// CRR error decays like O(1/N); allow slack for the payoff
			// kink oscillation.
			bound := 4.0 * o.Spot / float64(n)
			if errAbs > bound {
				t.Errorf("%v N=%d: |%.6f - %.6f| = %g > %g", right, n, got, ref, errAbs, bound)
			}
			if n >= 256 && errAbs > prev*4 {
				t.Errorf("%v N=%d: error %g not shrinking (prev %g)", right, n, errAbs, prev)
			}
			prev = errAbs
		}
	}
}

func TestAmericanCallNoDividendEqualsEuropean(t *testing.T) {
	// With no dividends, early exercise of a call is never optimal, so the
	// American and European prices coincide — a strong structural check of
	// the early-exercise logic.
	o := amPut()
	o.Right = option.Call
	e := mustEngine(t, 512)

	o.Style = option.American
	am, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Style = option.European
	eu, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(am, eu, 1e-12, 1e-12) {
		t.Errorf("american call %v != european call %v (q=0)", am, eu)
	}
}

func TestAmericanPutPremium(t *testing.T) {
	// American put must exceed the European put (early exercise has
	// positive value when r > 0) and dominate intrinsic.
	o := amPut()
	e := mustEngine(t, 512)
	am, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Style = option.European
	eu, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if am <= eu {
		t.Errorf("american put %v should exceed european %v", am, eu)
	}
	if am < amPut().Intrinsic() {
		t.Errorf("american put %v below intrinsic %v", am, amPut().Intrinsic())
	}
}

func TestAmericanPutReferenceValue(t *testing.T) {
	// Literature benchmark (e.g. Hull): American put S=50 K=50 r=0.10
	// sigma=0.40 T=5/12 is worth about 4.28-4.29.
	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 50, Strike: 50, Rate: 0.10, Sigma: 0.40, T: 5.0 / 12.0,
	}
	e := mustEngine(t, 2048)
	got, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.283) > 0.01 {
		t.Errorf("american put = %v, want ~4.28", got)
	}
}

func TestDeepITMAmericanPutIsIntrinsic(t *testing.T) {
	// Very deep in the money with high rates: immediate exercise optimal,
	// value pinned at intrinsic.
	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 10, Strike: 100, Rate: 0.10, Sigma: 0.2, T: 1,
	}
	e := mustEngine(t, 256)
	got, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, 90, 1e-9, 1e-12) {
		t.Errorf("deep ITM american put = %v, want 90 (intrinsic)", got)
	}
}

func TestMonotonicityProperties(t *testing.T) {
	e := mustEngine(t, 128)
	f := func(rawS, rawSig float64) bool {
		o := amPut()
		o.Spot = 50 + math.Abs(math.Mod(rawS, 100))
		o.Sigma = 0.1 + math.Abs(math.Mod(rawSig, 0.5))
		base, err := e.Price(o)
		if err != nil {
			return false
		}
		// Put value decreases in spot.
		up := o
		up.Spot *= 1.05
		vUp, err := e.Price(up)
		if err != nil {
			return false
		}
		if vUp > base+1e-9 {
			return false
		}
		// Value increases in volatility.
		hv := o
		hv.Sigma += 0.05
		vHv, err := e.Price(hv)
		if err != nil {
			return false
		}
		return vHv >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPutCallParityOnTree(t *testing.T) {
	// European tree prices must satisfy parity to tree accuracy.
	o := amPut()
	o.Style = option.European
	e := mustEngine(t, 1024)
	put, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Right = option.Call
	call, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	lhs := call - put
	rhs := o.Spot - o.Strike*math.Exp(-o.Rate*o.T)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("tree parity violated: C-P = %.12f, S-K*disc = %.12f", lhs, rhs)
	}
}

func TestParameterisationsAgree(t *testing.T) {
	// CRR, Jarrow-Rudd and Tian converge to the same value.
	o := amPut()
	var prices []float64
	for _, p := range []option.Parameterisation{option.CRR, option.JarrowRudd, option.Tian} {
		e := mustEngine(t, 2048).WithParameterisation(p)
		v, err := e.Price(o)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		prices = append(prices, v)
	}
	for i := 1; i < len(prices); i++ {
		if math.Abs(prices[i]-prices[0]) > 0.01 {
			t.Errorf("parameterisation %d price %v too far from CRR %v", i, prices[i], prices[0])
		}
	}
}

func TestSinglePrecisionErrorMagnitude(t *testing.T) {
	// The float32 engine should track the double engine to ~1e-3 at
	// N=1024 (Table II quotes ~1e-3 RMSE for single-precision builds) and
	// must not match it to double accuracy (that would mean the rounding
	// is not applied).
	o := amPut()
	ref := mustEngine(t, 1024)
	sgl := mustEngine(t, 1024).WithSinglePrecision()
	vr, err := ref.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := sgl.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(vr - vs)
	if diff == 0 {
		t.Error("single precision identical to double — rounding not applied")
	}
	if diff > 0.05 {
		t.Errorf("single precision error %g implausibly large", diff)
	}
}

func TestDeviceLeavesFlawedPowRMSE(t *testing.T) {
	// End-to-end reproduction of the paper's accuracy isolation: kernel
	// IV.B style device-side leaves through the flawed Power core must
	// give RMSE ~1e-3 against the reference, and the accurate core must
	// repair it (experiment E4).
	ref := mustEngine(t, 1024)
	flawed := mustEngine(t, 1024).WithDeviceLeaves(hwmath.Flawed13)
	fixed := mustEngine(t, 1024).WithDeviceLeaves(hwmath.Accurate13SP1)

	var refs, flawedVals, fixedVals []float64
	for i := 0; i < 40; i++ {
		o := amPut()
		o.Strike = 80 + float64(i)
		vr, err := ref.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		vf, err := flawed.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		vx, err := fixed.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, vr)
		flawedVals = append(flawedVals, vf)
		fixedVals = append(fixedVals, vx)
	}
	rmseFlawed := mathx.RMSE(flawedVals, refs)
	rmseFixed := mathx.RMSE(fixedVals, refs)
	if om := mathx.OrderOfMagnitude(rmseFlawed); om < -5 || om > -2 {
		t.Errorf("flawed-pow RMSE = %g (order %d), paper reports ~1e-3", rmseFlawed, om)
	}
	if rmseFixed > 1e-9 {
		t.Errorf("accurate-pow RMSE = %g, should be ~machine precision", rmseFixed)
	}
}

func TestRetainLevels(t *testing.T) {
	e := mustEngine(t, 8)
	p, err := e.NewPlan(amPut())
	if err != nil {
		t.Fatal(err)
	}
	_, kept := p.ExecRetain(3)
	if len(kept) != 3 {
		t.Fatalf("kept %d levels", len(kept))
	}
	for tl, level := range kept {
		if len(level) != tl+1 {
			t.Errorf("level %d has %d nodes, want %d", tl, len(level), tl+1)
		}
	}
}

func TestPriceBoundsProperty(t *testing.T) {
	// Arbitrage bounds for random contracts: intrinsic <= american value;
	// put <= strike; call <= spot.
	e := mustEngine(t, 96)
	f := func(rawK, rawSig, rawT float64) bool {
		o := amPut()
		o.Strike = 50 + math.Abs(math.Mod(rawK, 150))
		o.Sigma = 0.05 + math.Abs(math.Mod(rawSig, 0.8))
		o.T = 0.1 + math.Abs(math.Mod(rawT, 2))
		put, err := e.Price(o)
		if err != nil {
			return true // infeasible parameterisations excluded elsewhere
		}
		if put < o.Intrinsic()-1e-9 || put > o.Strike+1e-9 {
			return false
		}
		o.Right = option.Call
		call, err := e.Price(o)
		if err != nil {
			return true
		}
		return call >= o.Intrinsic()-1e-9 && call <= o.Spot+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
