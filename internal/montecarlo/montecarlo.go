// Package montecarlo implements the Monte Carlo pricing substrate the
// paper's related work revolves around (§II: GPU and FPGA Monte Carlo
// accelerators [4]-[8]): geometric Brownian motion path generation over
// the deterministic xoshiro streams, European pricing by exact terminal
// sampling with antithetic and control-variate variance reduction, and
// American pricing by Longstaff–Schwartz least-squares regression. It
// exists to reproduce the paper's framing argument — Monte Carlo
// parallelises beautifully but converges at O(1/sqrt(n)), which is why a
// binomial accelerator wins on this problem class.
package montecarlo

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"binopt/internal/linalg"
	"binopt/internal/option"
	"binopt/internal/rng"
)

// Config parameterises a Monte Carlo run.
type Config struct {
	// Paths is the number of simulated paths (antithetic pairs count as
	// two paths).
	Paths int
	// Steps is the number of exercise dates for American contracts
	// (ignored for European, which samples the terminal law exactly).
	Steps int
	// Seed drives the deterministic random streams.
	Seed uint64
	// Antithetic enables antithetic pairing.
	Antithetic bool
	// ControlVariate enables the discounted-underlying control variate
	// for European pricing (its expectation is known in closed form).
	ControlVariate bool
	// Workers bounds concurrency (<= 0: GOMAXPROCS). Each worker gets a
	// 2^128-jumped substream, so results are independent of scheduling.
	Workers int
}

func (c Config) validate() error {
	if c.Paths < 2 {
		return fmt.Errorf("montecarlo: need at least 2 paths, got %d", c.Paths)
	}
	return nil
}

// Result carries a Monte Carlo estimate and its standard error.
type Result struct {
	Price    float64
	StdErr   float64
	Paths    int
	Variance float64
}

// String renders the estimate with its confidence half-width.
func (r Result) String() string {
	return fmt.Sprintf("%.6f ± %.6f (1σ, %d paths)", r.Price, r.StdErr, r.Paths)
}

// PriceEuropean estimates a European option by sampling the exact
// lognormal terminal distribution.
func PriceEuropean(o option.Option, cfg Config) (Result, error) {
	if err := o.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if o.Style != option.European {
		return Result{}, fmt.Errorf("montecarlo: PriceEuropean got %v exercise", o.Style)
	}

	drift := (o.Rate - o.Div - 0.5*o.Sigma*o.Sigma) * o.T
	vol := o.Sigma * math.Sqrt(o.T)
	disc := math.Exp(-o.Rate * o.T)
	// Control variate: discounted terminal spot, E = S0*exp(-q*T).
	cvMean := o.Spot * math.Exp(-o.Div*o.T)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Paths {
		workers = cfg.Paths
	}
	type acc struct {
		n                        int
		sumY, sumY2              float64
		sumX, sumX2, sumXY       float64
		_pad0, _pad1, _pad2, _p3 float64 // avoid false sharing between workers
	}
	accs := make([]acc, workers)
	var wg sync.WaitGroup
	base := rng.New(cfg.Seed)
	for w := 0; w < workers; w++ {
		gen := rng.New(cfg.Seed)
		*gen = *base
		base.Jump()
		count := cfg.Paths / workers
		if w < cfg.Paths%workers {
			count++
		}
		wg.Add(1)
		go func(w, count int, gen *rng.Xoshiro256) {
			defer wg.Done()
			norm := rng.NewNorm(gen)
			a := &accs[w]
			record := func(y, x float64) {
				a.n++
				a.sumY += y
				a.sumY2 += y * y
				a.sumX += x
				a.sumX2 += x * x
				a.sumXY += x * y
			}
			if cfg.Antithetic {
				// One observation per antithetic pair: the pair average.
				// Statistics over pair means account for the negative
				// within-pair covariance that drives the variance
				// reduction.
				for i := 0; i < (count+1)/2; i++ {
					z := norm.Next()
					up := o.Spot * math.Exp(drift+vol*z)
					dn := o.Spot * math.Exp(drift-vol*z)
					record(0.5*disc*(o.Payoff(up)+o.Payoff(dn)), 0.5*disc*(up+dn))
				}
				return
			}
			for i := 0; i < count; i++ {
				st := o.Spot * math.Exp(drift+vol*norm.Next())
				record(disc*o.Payoff(st), disc*st)
			}
		}(w, count, gen)
	}
	wg.Wait()

	var tot acc
	for i := range accs {
		tot.n += accs[i].n
		tot.sumY += accs[i].sumY
		tot.sumY2 += accs[i].sumY2
		tot.sumX += accs[i].sumX
		tot.sumX2 += accs[i].sumX2
		tot.sumXY += accs[i].sumXY
	}
	n := float64(tot.n)
	meanY := tot.sumY / n
	varY := tot.sumY2/n - meanY*meanY

	price := meanY
	variance := varY
	if cfg.ControlVariate {
		meanX := tot.sumX / n
		varX := tot.sumX2/n - meanX*meanX
		if varX > 0 {
			cov := tot.sumXY/n - meanX*meanY
			beta := cov / varX
			price = meanY - beta*(meanX-cvMean)
			variance = varY - cov*cov/varX
			if variance < 0 {
				variance = 0
			}
		}
	}
	return Result{
		Price:    price,
		StdErr:   math.Sqrt(variance / n),
		Paths:    tot.n,
		Variance: variance,
	}, nil
}

// PriceAmerican estimates an American option with the Longstaff–Schwartz
// least-squares method: simulate full paths over cfg.Steps exercise
// dates, then regress continuation values on in-the-money paths at each
// date, backward from expiry. The polynomial basis is {1, m, m^2, m^3}
// in moneyness m = S/K.
func PriceAmerican(o option.Option, cfg Config) (Result, error) {
	if err := o.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Steps < 1 {
		return Result{}, fmt.Errorf("montecarlo: LSM needs at least 1 step, got %d", cfg.Steps)
	}

	n := cfg.Paths
	steps := cfg.Steps
	dt := o.T / float64(steps)
	drift := (o.Rate - o.Div - 0.5*o.Sigma*o.Sigma) * dt
	vol := o.Sigma * math.Sqrt(dt)
	disc := math.Exp(-o.Rate * dt)

	// Simulate all paths (row-major: path-major keeps generation simple
	// and deterministic; the regression walks columns). Antithetic
	// pairing operates on whole paths — path 2k+1 negates every increment
	// of path 2k — so each path keeps iid increments.
	paths := make([][]float64, n)
	norm := rng.NewNorm(rng.New(cfg.Seed))
	zs := make([]float64, steps)
	for p := 0; p < n; p++ {
		row := make([]float64, steps+1)
		row[0] = o.Spot
		if cfg.Antithetic && p%2 == 1 {
			for t := 1; t <= steps; t++ {
				row[t] = row[t-1] * math.Exp(drift-vol*zs[t-1])
			}
		} else {
			for t := 1; t <= steps; t++ {
				zs[t-1] = norm.Next()
				row[t] = row[t-1] * math.Exp(drift+vol*zs[t-1])
			}
		}
		paths[p] = row
	}

	// Cashflow state: value and time of the currently-optimal exercise
	// along each path, initialised at expiry.
	cash := make([]float64, n)
	when := make([]int, n)
	for p := 0; p < n; p++ {
		cash[p] = o.Payoff(paths[p][steps])
		when[p] = steps
	}

	const basisDim = 4
	for t := steps - 1; t >= 1; t-- {
		// In-the-money paths participate in the regression.
		var x [][]float64
		var y []float64
		var idx []int
		for p := 0; p < n; p++ {
			s := paths[p][t]
			if o.Payoff(s) <= 0 {
				continue
			}
			m := s / o.Strike
			x = append(x, []float64{1, m, m * m, m * m * m})
			y = append(y, cash[p]*math.Pow(disc, float64(when[p]-t)))
			idx = append(idx, p)
		}
		if len(x) < basisDim {
			continue // too few ITM paths for a stable fit at this date
		}
		beta, err := linalg.LeastSquares(x, y)
		if err != nil {
			return Result{}, fmt.Errorf("montecarlo: regression at step %d: %w", t, err)
		}
		for i, p := range idx {
			m := x[i][1]
			cont := beta[0] + beta[1]*m + beta[2]*m*m + beta[3]*m*m*m
			if ex := o.Payoff(paths[p][t]); ex > cont {
				cash[p] = ex
				when[p] = t
			}
		}
	}

	var sum, sumSq float64
	for p := 0; p < n; p++ {
		v := cash[p] * math.Pow(disc, float64(when[p]))
		sum += v
		sumSq += v * v
	}
	nf := float64(n)
	mean := sum / nf
	variance := sumSq/nf - mean*mean
	if variance < 0 {
		variance = 0
	}
	// Immediate exercise at t=0 dominates if intrinsic beats the
	// estimate (deep ITM).
	if intr := o.Intrinsic(); intr > mean {
		mean = intr
	}
	return Result{Price: mean, StdErr: math.Sqrt(variance / nf), Paths: n, Variance: variance}, nil
}
