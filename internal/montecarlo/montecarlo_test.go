package montecarlo

import (
	"math"
	"strings"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
)

func euro(right option.Right) option.Option {
	return option.Option{
		Right: right, Style: option.European,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestEuropeanConvergesToBlackScholes(t *testing.T) {
	for _, right := range []option.Right{option.Call, option.Put} {
		o := euro(right)
		ref, err := bs.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PriceEuropean(o, Config{Paths: 400000, Seed: 1, Antithetic: true})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(res.Price - ref); diff > 4*res.StdErr+1e-3 {
			t.Errorf("%v: MC %v vs BS %v (diff %g, 4σ %g)", right, res.Price, ref, diff, 4*res.StdErr)
		}
	}
}

func TestControlVariateReducesVariance(t *testing.T) {
	o := euro(option.Call)
	plain, err := PriceEuropean(o, Config{Paths: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := PriceEuropean(o, Config{Paths: 100000, Seed: 3, ControlVariate: true})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Variance >= plain.Variance {
		t.Errorf("control variate variance %g not below plain %g", cv.Variance, plain.Variance)
	}
	ref, _ := bs.Price(o)
	if diff := math.Abs(cv.Price - ref); diff > 5*cv.StdErr+1e-3 {
		t.Errorf("CV price %v too far from BS %v", cv.Price, ref)
	}
}

func TestAntitheticReducesVariance(t *testing.T) {
	o := euro(option.Put)
	plain, err := PriceEuropean(o, Config{Paths: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := PriceEuropean(o, Config{Paths: 100000, Seed: 5, Antithetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if anti.StdErr >= plain.StdErr {
		t.Errorf("antithetic stderr %g not below plain %g", anti.StdErr, plain.StdErr)
	}
}

func TestEuropeanDeterministicAcrossWorkerCounts(t *testing.T) {
	// Per-worker jumped substreams make the estimate independent of
	// scheduling but dependent on the worker count; the same worker
	// count must reproduce exactly.
	o := euro(option.Call)
	a, err := PriceEuropean(o, Config{Paths: 50000, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PriceEuropean(o, Config{Paths: 50000, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price {
		t.Errorf("same config not reproducible: %v vs %v", a.Price, b.Price)
	}
}

func TestEuropeanValidation(t *testing.T) {
	o := euro(option.Call)
	if _, err := PriceEuropean(o, Config{Paths: 1}); err == nil {
		t.Error("1 path should fail")
	}
	am := o
	am.Style = option.American
	if _, err := PriceEuropean(am, Config{Paths: 100}); err == nil {
		t.Error("American contract should be rejected")
	}
	bad := o
	bad.Sigma = -1
	if _, err := PriceEuropean(bad, Config{Paths: 100}); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestLSMMatchesLatticeAmericanPut(t *testing.T) {
	// The reproduction's framing experiment: LSM converges to the
	// binomial value, slowly. 60k paths x 50 dates should land within
	// ~1% of the lattice reference (LSM is slightly low-biased).
	o := euro(option.Put)
	o.Style = option.American
	eng, err := lattice.NewEngine(2048)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PriceAmerican(o, Config{Paths: 60000, Steps: 50, Seed: 7, Antithetic: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(res.Price-ref) / ref
	if rel > 0.015 {
		t.Errorf("LSM %v vs lattice %v (rel %g)", res.Price, ref, rel)
	}
	// American >= European for the same contract.
	oe := euro(option.Put)
	eres, err := PriceEuropean(oe, Config{Paths: 60000, Seed: 7, Antithetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Price < eres.Price-3*eres.StdErr {
		t.Errorf("american %v below european %v", res.Price, eres.Price)
	}
}

func TestLSMDeepITMReturnsAtLeastIntrinsic(t *testing.T) {
	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 50, Strike: 100, Rate: 0.08, Sigma: 0.2, T: 1,
	}
	res, err := PriceAmerican(o, Config{Paths: 20000, Steps: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Price < 50 {
		t.Errorf("deep ITM american put %v below intrinsic 50", res.Price)
	}
}

func TestLSMValidation(t *testing.T) {
	o := euro(option.Put)
	o.Style = option.American
	if _, err := PriceAmerican(o, Config{Paths: 1000, Steps: 0}); err == nil {
		t.Error("0 steps should fail")
	}
	if _, err := PriceAmerican(o, Config{Paths: 1, Steps: 10}); err == nil {
		t.Error("1 path should fail")
	}
	bad := o
	bad.Spot = -1
	if _, err := PriceAmerican(bad, Config{Paths: 100, Steps: 10}); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestConvergenceRateIsSqrtN(t *testing.T) {
	// The related-work argument: quadrupling the paths should roughly
	// halve the standard error.
	o := euro(option.Call)
	small, err := PriceEuropean(o, Config{Paths: 20000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	big, err := PriceEuropean(o, Config{Paths: 80000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ratio := small.StdErr / big.StdErr
	if ratio < 1.7 || ratio > 2.4 {
		t.Errorf("stderr ratio for 4x paths = %v, want ~2 (O(1/sqrt n))", ratio)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Price: 1.23, StdErr: 0.01, Paths: 1000}
	if s := r.String(); !strings.Contains(s, "1.23") || !strings.Contains(s, "1000") {
		t.Errorf("String: %q", s)
	}
}
