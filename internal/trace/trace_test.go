package trace

import (
	"strings"
	"testing"

	"binopt/internal/opencl"
	"binopt/internal/option"
)

func sampleOpt() option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestFigure1(t *testing.T) {
	s, err := Figure1(sampleOpt(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The N=2 CRR tree around spot 100: root 100, middle leaf back at
	// 100, corners u^2 and d^2 scaled.
	for _, want := range []string{"N=2", "backward iteration", "V(0,0)", "100.0000", "initialisation"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, s)
		}
	}
	// Recombination: the middle leaf (2,1) equals the spot at (0,0) for CRR.
	if strings.Count(s, "100.0000") < 2 {
		t.Errorf("CRR recombination not visible (want spot at (0,0) and (2,1)):\n%s", s)
	}
}

func TestFigure1Validation(t *testing.T) {
	if _, err := Figure1(sampleOpt(), 0); err == nil {
		t.Error("0 steps should fail")
	}
	if _, err := Figure1(sampleOpt(), 9); err == nil {
		t.Error("9 steps should fail (unreadable)")
	}
	bad := sampleOpt()
	bad.Sigma = -1
	if _, err := Figure1(bad, 2); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestFigure2(t *testing.T) {
	p := opencl.NewPlatform("Altera SDK", "Altera", "OpenCL 1.0", opencl.DeviceInfo{
		Name: "DE4", Type: opencl.Accelerator, ComputeUnits: 1,
		GlobalMemBytes: 2 << 30, LocalMemBytes: 1 << 20, MaxWorkGroupSize: 2048,
	})
	s := Figure2(p)
	for _, want := range []string{"HOST", "DEVICE", "GLOBAL MEMORY", "LOCAL MEMORY", "PRIVATE", "Compute Unit 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 2 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure3(t *testing.T) {
	s, err := Figure3(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batch 3", "ping-pong", "id=0", "option 2", "result available this batch: option 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 3 missing %q:\n%s", want, s)
		}
	}
	// Pipeline fill annotation for early batches.
	early, err := Figure3(3, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(early, "pipeline filling") {
		t.Errorf("early batch should show pipeline fill:\n%s", early)
	}
	// Drain annotation past the last option.
	late, err := Figure3(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(late, "pipeline draining") {
		t.Errorf("late batch should show drain:\n%s", late)
	}
}

func TestFigure3Validation(t *testing.T) {
	if _, err := Figure3(0, 0, 1); err == nil {
		t.Error("0 steps should fail")
	}
	if _, err := Figure3(2, -1, 1); err == nil {
		t.Error("negative batch should fail")
	}
	if _, err := Figure3(7, 0, 1); err == nil {
		t.Error("7 steps should fail (unreadable)")
	}
}

func TestFigure4(t *testing.T) {
	s, err := Figure4(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"barrier", "local memory", "wi0", "idle", "rp*vUp + rq*vDn", "global memory"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 4 missing %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "barrier") < 2 {
		t.Error("figure 4 must show both barriers")
	}
}

func TestFigure4Validation(t *testing.T) {
	if _, err := Figure4(1, 0); err == nil {
		t.Error("1 step should fail")
	}
	if _, err := Figure4(4, 4); err == nil {
		t.Error("t out of range should fail")
	}
	if _, err := Figure4(4, -1); err == nil {
		t.Error("negative t should fail")
	}
}
