package trace

import (
	"fmt"
	"strings"
)

// nodeBase mirrors the flattening used by kernel IV.A: level t starts at
// offset t*(t+1)/2.
func nodeBase(t int) int { return t * (t + 1) / 2 }

// Figure3 renders the straightforward implementation's dataflow for an
// n-step tree at a given batch: the flattened tree with global work-item
// ids, the option each pipeline stage is processing, the ping-pong read
// and write addresses, and the host operations of the batch (the paper
// draws N=2, batch 3).
func Figure3(n int, batch, numOptions int) (string, error) {
	if n < 1 || n > 6 {
		return "", fmt.Errorf("trace: figure 3 wants 1 <= steps <= 6, got %d", n)
	}
	if batch < 0 || numOptions < 1 {
		return "", fmt.Errorf("trace: figure 3 wants batch >= 0 and options >= 1")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel IV.A dataflow, N=%d, batch %d (Figure 3)\n", n, batch)
	fmt.Fprintf(&b, "work-items: %d per batch; ping-pong buffers swap between batches\n\n", nodeBase(n))
	b.WriteString("stage  node(t,k)  global-id  reads(old)      writes(new)  option-in-stage\n")
	for t := n - 1; t >= 0; t-- {
		for k := t; k >= 0; k-- {
			id := nodeBase(t) + k
			child := nodeBase(t+1) + k
			op := batch - (n - 1 - t)
			opLabel := fmt.Sprintf("option %d", op)
			if op < 0 {
				opLabel = "(pipeline filling)"
			} else if op >= numOptions {
				opLabel = "(pipeline draining)"
			}
			fmt.Fprintf(&b, "t=%-4d (%d,%d)      id=%-6d  V[%d],V[%d],S[%d]  V[%d],S[%d]     %s\n",
				t, t, k, id, child, child+1, child, id, id, opLabel)
		}
	}
	fmt.Fprintf(&b, "\nhost per batch: init leaves -> write S[%d..%d],V[same] -> enqueue %d kernels -> read result V[0]\n",
		nodeBase(n), nodeBase(n+1)-1, nodeBase(n))
	if done := batch - (n - 1); done >= 0 && done < numOptions {
		fmt.Fprintf(&b, "result available this batch: option %d\n", done)
	}
	b.WriteString("buffers switch (ping <-> pong) before the next batch\n")
	return b.String(), nil
}

// Figure4 renders the optimized kernel's dataflow for one backward step:
// per-row work-items, the local-memory copy/compute/store phases and the
// barrier points (the paper draws three work-items).
func Figure4(n int, t int) (string, error) {
	if n < 2 || n > 8 {
		return "", fmt.Errorf("trace: figure 4 wants 2 <= steps <= 8, got %d", n)
	}
	if t < 0 || t >= n {
		return "", fmt.Errorf("trace: figure 4 wants 0 <= t < steps, got t=%d", t)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel IV.B dataflow, N=%d, backward step t=%d (Figure 4)\n", n, t)
	fmt.Fprintf(&b, "one work-group per option; work-item k owns tree row k; V[] lives in local memory\n\n")

	b.WriteString("local ids:     ")
	for k := 0; k <= n; k++ {
		fmt.Fprintf(&b, "wi%-5d", k)
	}
	b.WriteString("\nprivate S:     ")
	for k := 0; k <= n; k++ {
		if k <= t {
			b.WriteString("S(t,k) ")
		} else {
			b.WriteString("idle   ")
		}
	}
	b.WriteString("\n\nphase 1 (copy):    active k<=t read  vDn=V[k], vUp=V[k+1]   from local memory\n")
	b.WriteString("--- barrier ---------------------------------------------------------------\n")
	b.WriteString("phase 2 (compute): S *= 1/d; cont = rp*vUp + rq*vDn; max(payoff(S), cont)\n")
	b.WriteString("phase 2 (store):   V[k] = result                     to local memory\n")
	b.WriteString("--- barrier ---------------------------------------------------------------\n")
	fmt.Fprintf(&b, "\nwork-items with k > t stay idle (\"hardware resources are unlikely to be reused\")\n")
	fmt.Fprintf(&b, "after t=0: wi0 stores V[0] to global memory; host reads all results once\n")
	return b.String(), nil
}
