package trace

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders an ASCII scatter/line chart of y against x — enough to
// eyeball a volatility smile or a saturation ramp in a terminal, which
// is how the paper's trader-side tooling would surface them.
func Plot(title, xLabel, yLabel string, xs, ys []float64, width, height int) (string, error) {
	if len(xs) != len(ys) {
		return "", fmt.Errorf("trace: plot needs matching series, got %d x and %d y", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return "", fmt.Errorf("trace: plot needs at least 2 points, got %d", len(xs))
	}
	if width < 16 || height < 4 {
		return "", fmt.Errorf("trace: plot needs width >= 16 and height >= 4, got %dx%d", width, height)
	}
	xMin, xMax := xs[0], xs[0]
	yMin, yMax := ys[0], ys[0]
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) || math.IsInf(xs[i], 0) || math.IsInf(ys[i], 0) {
			return "", fmt.Errorf("trace: plot point %d is not finite", i)
		}
		xMin = math.Min(xMin, xs[i])
		xMax = math.Max(xMax, xs[i])
		yMin = math.Min(yMin, ys[i])
		yMax = math.Max(yMax, ys[i])
	}
	//binopt:ignore floateq a degenerate axis range means every point is bitwise identical; exact is the right test
	if xMax == xMin {
		return "", fmt.Errorf("trace: plot x range is degenerate")
	}
	//binopt:ignore floateq a degenerate axis range means every point is bitwise identical; exact is the right test
	if yMax == yMin {
		// Flat series: pad the range so the line sits mid-chart.
		yMax += 1
		yMin -= 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int(math.Round((xs[i] - xMin) / (xMax - xMin) * float64(width-1)))
		r := int(math.Round((ys[i] - yMin) / (yMax - yMin) * float64(height-1)))
		row := height - 1 - r
		grid[row][c] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (max %.4g)\n", yLabel, yMax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, " %s: %.4g .. %.4g (%s min %.4g)\n", xLabel, xMin, xMax, yLabel, yMin)
	return b.String(), nil
}
