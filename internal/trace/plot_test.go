package trace

import (
	"math"
	"strings"
	"testing"
)

func TestPlotRendersSmileShape(t *testing.T) {
	var xs, ys []float64
	for m := 0.7; m <= 1.3; m += 0.05 {
		xs = append(xs, m)
		ys = append(ys, 0.18+0.12*(1.05-m)*(1.05-m))
	}
	s, err := Plot("smile", "moneyness", "vol", xs, ys, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "smile") || strings.Count(s, "*") < 10 {
		t.Errorf("plot:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	// Header, y-label, height rows, axis, x-label.
	if len(lines) < 14 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotFlatSeries(t *testing.T) {
	s, err := Plot("flat", "x", "y", []float64{0, 1, 2}, []float64{5, 5, 5}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(s, "*") < 2 {
		t.Errorf("flat plot lost points:\n%s", s)
	}
}

func TestPlotValidation(t *testing.T) {
	if _, err := Plot("t", "x", "y", []float64{1}, []float64{1}, 20, 5); err == nil {
		t.Error("single point should fail")
	}
	if _, err := Plot("t", "x", "y", []float64{1, 2}, []float64{1}, 20, 5); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Plot("t", "x", "y", []float64{1, 2}, []float64{1, 2}, 5, 5); err == nil {
		t.Error("tiny width should fail")
	}
	if _, err := Plot("t", "x", "y", []float64{1, 1}, []float64{1, 2}, 20, 5); err == nil {
		t.Error("degenerate x range should fail")
	}
	if _, err := Plot("t", "x", "y", []float64{1, math.NaN()}, []float64{1, 2}, 20, 5); err == nil {
		t.Error("NaN point should fail")
	}
}
