// Package trace renders ASCII equivalents of the paper's explanatory
// figures from live data structures: the binomial tree of Figure 1, the
// OpenCL platform model of Figure 2, the flattened dataflow of the
// straightforward kernel (Figure 3) and the local-memory dataflow of the
// optimized kernel (Figure 4). Each renderer is driven by the same
// parameterisation code the pricing engines use, so the figures stay
// truthful to the implementation.
package trace

import (
	"fmt"
	"strings"

	"binopt/internal/opencl"
	"binopt/internal/option"
)

// Figure1 renders the binomial tree for the option at the given depth
// (the paper draws T=2): asset prices per node, leaf initialisation and
// the backward iteration direction.
func Figure1(o option.Option, n int) (string, error) {
	if n < 1 || n > 8 {
		return "", fmt.Errorf("trace: figure 1 wants 1 <= steps <= 8, got %d", n)
	}
	lp, err := option.NewLatticeParams(o, n, option.CRR)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Binomial tree, N=%d (Figure 1): %s\n", n, o.String())
	fmt.Fprintf(&b, "u=%.6f d=%.6f p=%.4f rp=%.6f rq=%.6f\n\n", lp.U, lp.D, lp.P, lp.Pu, lp.Pd)
	b.WriteString("t:   ")
	for t := 0; t <= n; t++ {
		fmt.Fprintf(&b, "%-12d", t)
	}
	b.WriteString("\n")
	for k := n; k >= 0; k-- {
		fmt.Fprintf(&b, "k=%-2d ", k)
		for t := 0; t <= n; t++ {
			if k <= t {
				fmt.Fprintf(&b, "%-12.4f", nodePrice(o.Spot, lp, t, k))
			} else {
				b.WriteString(strings.Repeat(" ", 12))
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("\nleaves: V(N,k) = payoff(S(N,k))          <- initialisation\n")
	b.WriteString("inner:  V(t,k) = max(payoff(S), rp*V(t+1,k+1) + rq*V(t+1,k))\n")
	b.WriteString("<=== backward iteration: option price is V(0,0)\n")
	return b.String(), nil
}

// nodePrice is the asset price at node (t, k): S0 * u^k * d^(t-k).
func nodePrice(spot float64, lp option.LatticeParams, t, k int) float64 {
	return spot * pow(lp.U, k) * pow(lp.D, t-k)
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// Figure2 renders the OpenCL platform model: host, device, compute
// units, the three memory levels.
func Figure2(p *opencl.Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OpenCL platform model (Figure 2)\n")
	fmt.Fprintf(&b, "HOST -- command queues --> platform %q (%s, %s)\n", p.Name, p.Vendor, p.Version)
	for _, d := range p.Devices(-1) {
		i := d.Info
		fmt.Fprintf(&b, "  DEVICE %q [%s]\n", i.Name, i.Type)
		fmt.Fprintf(&b, "    GLOBAL MEMORY: %d bytes (host-visible)\n", i.GlobalMemBytes)
		for cu := 0; cu < i.ComputeUnits; cu++ {
			fmt.Fprintf(&b, "    Compute Unit %d\n", cu)
			fmt.Fprintf(&b, "      LOCAL MEMORY: %d bytes (work-group shared)\n", i.LocalMemBytes)
			fmt.Fprintf(&b, "      work-items x%d max, PRIVATE memory each\n", i.MaxWorkGroupSize)
		}
	}
	return b.String()
}
