package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuoteRoundTrip(t *testing.T) {
	opts, err := MixedBatch(8, 20)
	if err != nil {
		t.Fatal(err)
	}
	quotes, err := ReferenceQuotes(opts, 48, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveQuotes(&buf, quotes); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQuotes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(quotes) {
		t.Fatalf("got %d quotes back", len(back))
	}
	for i := range quotes {
		if back[i] != quotes[i] {
			t.Fatalf("quote %d changed in round trip:\n%+v\n%+v", i, back[i], quotes[i])
		}
	}
}

func TestLoadQuotesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c\n",
		"bad right":    "right,style,spot,strike,rate,div,sigma,expiry_years,price\nfoo,american,100,100,0.03,0,0.2,1,5\n",
		"bad style":    "right,style,spot,strike,rate,div,sigma,expiry_years,price\nput,foo,100,100,0.03,0,0.2,1,5\n",
		"bad number":   "right,style,spot,strike,rate,div,sigma,expiry_years,price\nput,american,xx,100,0.03,0,0.2,1,5\n",
		"invalid opt":  "right,style,spot,strike,rate,div,sigma,expiry_years,price\nput,american,-5,100,0.03,0,0.2,1,5\n",
		"short fields": "right,style,spot,strike,rate,div,sigma,expiry_years,price\nput,american,100\n",
	}
	for name, data := range cases {
		if _, err := LoadQuotes(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveQuotesHeaderStable(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveQuotes(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != strings.Join(quoteHeader, ",") {
		t.Errorf("header = %q", got)
	}
}
