package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"binopt/internal/option"
)

// quoteHeader is the CSV column layout for quote tapes.
var quoteHeader = []string{"right", "style", "spot", "strike", "rate", "div", "sigma", "expiry_years", "price"}

// SaveQuotes writes a quote tape as CSV, one row per quote, with a
// header. The format is the interchange point between the generator and
// a desk's real market data.
func SaveQuotes(w io.Writer, quotes []Quote) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(quoteHeader); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 17, 64) }
	for i, q := range quotes {
		o := q.Option
		row := []string{
			o.Right.String(), o.Style.String(),
			f(o.Spot), f(o.Strike), f(o.Rate), f(o.Div), f(o.Sigma), f(o.T),
			f(q.Price),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: writing quote %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadQuotes reads a quote tape written by SaveQuotes (or hand-authored
// in the same layout). Every contract is validated.
func LoadQuotes(r io.Reader) ([]Quote, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading quotes: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty quote file")
	}
	if !equalRow(rows[0], quoteHeader) {
		return nil, fmt.Errorf("workload: unexpected header %v", rows[0])
	}
	quotes := make([]Quote, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(quoteHeader) {
			return nil, fmt.Errorf("workload: row %d has %d fields, want %d", i+1, len(row), len(quoteHeader))
		}
		var o option.Option
		switch row[0] {
		case "call":
			o.Right = option.Call
		case "put":
			o.Right = option.Put
		default:
			return nil, fmt.Errorf("workload: row %d: unknown right %q", i+1, row[0])
		}
		switch row[1] {
		case "european":
			o.Style = option.European
		case "american":
			o.Style = option.American
		default:
			return nil, fmt.Errorf("workload: row %d: unknown style %q", i+1, row[1])
		}
		vals := make([]float64, 7)
		for j := 0; j < 7; j++ {
			v, err := strconv.ParseFloat(row[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d field %q: %w", i+1, quoteHeader[2+j], err)
			}
			vals[j] = v
		}
		o.Spot, o.Strike, o.Rate, o.Div, o.Sigma, o.T = vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", i+1, err)
		}
		quotes = append(quotes, Quote{Option: o, Price: vals[6]})
	}
	return quotes, nil
}

func equalRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
