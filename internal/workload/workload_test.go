package workload

import (
	"math"
	"strings"
	"testing"

	"binopt/internal/option"
)

func TestChainDeterministic(t *testing.T) {
	spec := DefaultVolCurveSpec(42)
	spec.N = 50
	a, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chain not deterministic at %d", i)
		}
	}
}

func TestChainShape(t *testing.T) {
	spec := DefaultVolCurveSpec(7)
	opts, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2000 {
		t.Fatalf("use case needs 2000 options, got %d", len(opts))
	}
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			t.Fatalf("option %d invalid: %v", i, err)
		}
		if o.Style != option.American || o.Right != option.Put {
			t.Fatalf("option %d: wrong contract shape", i)
		}
		m := o.Strike / o.Spot
		if m < 0.65 || m > 1.35 {
			t.Errorf("option %d moneyness %v outside the configured band", i, m)
		}
	}
	// Strikes must span the range, roughly increasing.
	if opts[0].Strike > 75 || opts[len(opts)-1].Strike < 125 {
		t.Errorf("strike span [%v, %v] too narrow", opts[0].Strike, opts[len(opts)-1].Strike)
	}
}

func TestChainSpecValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ChainSpec)
		wantErr string // substring the error must carry
	}{
		{"zero options", func(s *ChainSpec) { s.N = 0 }, "at least 1 option"},
		{"negative options", func(s *ChainSpec) { s.N = -5 }, "at least 1 option"},
		{"zero spot", func(s *ChainSpec) { s.Spot = 0 }, "spot"},
		{"negative spot", func(s *ChainSpec) { s.Spot = -100 }, "spot"},
		{"NaN spot", func(s *ChainSpec) { s.Spot = math.NaN() }, "spot"},
		{"infinite spot", func(s *ChainSpec) { s.Spot = math.Inf(1) }, "spot"},
		{"zero expiry", func(s *ChainSpec) { s.T = 0 }, "expiry"},
		{"negative expiry", func(s *ChainSpec) { s.T = -0.5 }, "expiry"},
		{"NaN expiry", func(s *ChainSpec) { s.T = math.NaN() }, "expiry"},
		{"NaN rate", func(s *ChainSpec) { s.Rate = math.NaN() }, "rate"},
		{"infinite rate", func(s *ChainSpec) { s.Rate = math.Inf(-1) }, "rate"},
		{"zero min moneyness", func(s *ChainSpec) { s.MinMny = 0 }, "moneyness"},
		{"negative min moneyness", func(s *ChainSpec) { s.MinMny = -0.5 }, "moneyness"},
		{"inverted range", func(s *ChainSpec) { s.MinMny, s.MaxMny = 1.5, 0.5 }, "moneyness range"},
		{"empty range", func(s *ChainSpec) { s.MinMny, s.MaxMny = 1.0, 1.0 }, "moneyness range"},
		{"NaN max moneyness", func(s *ChainSpec) { s.MaxMny = math.NaN() }, "moneyness range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := DefaultVolCurveSpec(1)
			tc.mutate(&spec)
			_, err := Chain(spec)
			if err == nil {
				t.Fatalf("Chain accepted nonsensical spec %+v", spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if verr := spec.Validate(); verr == nil || verr.Error() != err.Error() {
				t.Fatalf("Validate() = %v, Chain err = %v; want identical", verr, err)
			}
		})
	}

	// The default spec itself must validate.
	if err := DefaultVolCurveSpec(7).Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestDefaultSmileShape(t *testing.T) {
	// Equity skew: deep OTM puts (low moneyness) carry more vol.
	if DefaultSmile(0.7) <= DefaultSmile(1.0) {
		t.Error("smile should be higher at low strikes")
	}
	for _, m := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		v := DefaultSmile(m)
		if v < 0.05 || v > 1.0 {
			t.Errorf("smile(%v) = %v outside sane band", m, v)
		}
	}
}

func TestMixedBatch(t *testing.T) {
	opts, err := MixedBatch(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	var calls, americans int
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			t.Fatalf("option %d invalid: %v", i, err)
		}
		if o.Right == option.Call {
			calls++
		}
		if o.Style == option.American {
			americans++
		}
	}
	if calls == 0 || calls == 60 {
		t.Error("batch should mix calls and puts")
	}
	if americans == 0 || americans == 60 {
		t.Error("batch should mix exercise styles")
	}
	if _, err := MixedBatch(3, 0); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestReferenceQuotes(t *testing.T) {
	opts, err := MixedBatch(11, 20)
	if err != nil {
		t.Fatal(err)
	}
	quotes, err := ReferenceQuotes(opts, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) != 20 {
		t.Fatalf("got %d quotes", len(quotes))
	}
	for i, q := range quotes {
		if q.Price < 0 {
			t.Errorf("quote %d negative: %v", i, q.Price)
		}
		if q.Option != opts[i] {
			t.Errorf("quote %d lost its contract", i)
		}
	}
	if _, err := ReferenceQuotes(opts, 0, 1); err == nil {
		t.Error("zero steps should fail")
	}
}
