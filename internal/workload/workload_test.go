package workload

import (
	"testing"

	"binopt/internal/option"
)

func TestChainDeterministic(t *testing.T) {
	spec := DefaultVolCurveSpec(42)
	spec.N = 50
	a, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chain not deterministic at %d", i)
		}
	}
}

func TestChainShape(t *testing.T) {
	spec := DefaultVolCurveSpec(7)
	opts, err := Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 2000 {
		t.Fatalf("use case needs 2000 options, got %d", len(opts))
	}
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			t.Fatalf("option %d invalid: %v", i, err)
		}
		if o.Style != option.American || o.Right != option.Put {
			t.Fatalf("option %d: wrong contract shape", i)
		}
		m := o.Strike / o.Spot
		if m < 0.65 || m > 1.35 {
			t.Errorf("option %d moneyness %v outside the configured band", i, m)
		}
	}
	// Strikes must span the range, roughly increasing.
	if opts[0].Strike > 75 || opts[len(opts)-1].Strike < 125 {
		t.Errorf("strike span [%v, %v] too narrow", opts[0].Strike, opts[len(opts)-1].Strike)
	}
}

func TestChainErrors(t *testing.T) {
	spec := DefaultVolCurveSpec(1)
	spec.N = 0
	if _, err := Chain(spec); err == nil {
		t.Error("zero options should fail")
	}
	spec = DefaultVolCurveSpec(1)
	spec.MinMny = 1.5
	spec.MaxMny = 0.5
	if _, err := Chain(spec); err == nil {
		t.Error("inverted moneyness range should fail")
	}
}

func TestDefaultSmileShape(t *testing.T) {
	// Equity skew: deep OTM puts (low moneyness) carry more vol.
	if DefaultSmile(0.7) <= DefaultSmile(1.0) {
		t.Error("smile should be higher at low strikes")
	}
	for _, m := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		v := DefaultSmile(m)
		if v < 0.05 || v > 1.0 {
			t.Errorf("smile(%v) = %v outside sane band", m, v)
		}
	}
}

func TestMixedBatch(t *testing.T) {
	opts, err := MixedBatch(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	var calls, americans int
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			t.Fatalf("option %d invalid: %v", i, err)
		}
		if o.Right == option.Call {
			calls++
		}
		if o.Style == option.American {
			americans++
		}
	}
	if calls == 0 || calls == 60 {
		t.Error("batch should mix calls and puts")
	}
	if americans == 0 || americans == 60 {
		t.Error("batch should mix exercise styles")
	}
	if _, err := MixedBatch(3, 0); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestReferenceQuotes(t *testing.T) {
	opts, err := MixedBatch(11, 20)
	if err != nil {
		t.Fatal(err)
	}
	quotes, err := ReferenceQuotes(opts, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(quotes) != 20 {
		t.Fatalf("got %d quotes", len(quotes))
	}
	for i, q := range quotes {
		if q.Price < 0 {
			t.Errorf("quote %d negative: %v", i, q.Price)
		}
		if q.Option != opts[i] {
			t.Errorf("quote %d lost its contract", i)
		}
	}
	if _, err := ReferenceQuotes(opts, 0, 1); err == nil {
		t.Error("zero steps should fail")
	}
}
