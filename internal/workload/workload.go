// Package workload generates the synthetic market data the experiments
// price. The paper's inputs are "generated from a binomial
// representation" (§I): an option chain around the money whose reference
// prices come from the double-precision binomial model itself, so the
// implied-volatility use case can recover a known smile. Generation is
// deterministic under a caller-provided seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"binopt/internal/lattice"
	"binopt/internal/option"
)

// ChainSpec parameterises an option chain.
type ChainSpec struct {
	Seed   int64
	N      int // number of contracts
	Spot   float64
	Rate   float64
	T      float64 // years to expiry
	Style  option.Style
	Right  option.Right
	MinMny float64 // lowest strike as a fraction of spot
	MaxMny float64 // highest strike as a fraction of spot
	// Smile describes the true volatility as a function of moneyness
	// (strike/spot); nil uses DefaultSmile.
	Smile func(m float64) float64
}

// DefaultSmile is a gentle equity-style skew: higher implied volatility
// for low strikes, a minimum slightly above the money.
func DefaultSmile(m float64) float64 {
	return 0.18 + 0.12*(1.05-m)*(1.05-m)
}

// DefaultVolCurveSpec is the paper's use case: one volatility curve of
// 2000 American puts around the money (§I: "2000 option values per
// volatility curve for accuracy considerations").
func DefaultVolCurveSpec(seed int64) ChainSpec {
	return ChainSpec{
		Seed:   seed,
		N:      2000,
		Spot:   100,
		Rate:   0.03,
		T:      0.5,
		Style:  option.American,
		Right:  option.Put,
		MinMny: 0.70,
		MaxMny: 1.30,
	}
}

// Validate reports whether the spec can generate a usable chain,
// with a descriptive error naming the offending field otherwise.
func (spec ChainSpec) Validate() error {
	switch {
	case spec.N < 1:
		return fmt.Errorf("workload: chain needs at least 1 option, got N=%d", spec.N)
	case !(spec.Spot > 0) || math.IsInf(spec.Spot, 0):
		return fmt.Errorf("workload: spot must be positive and finite, got %v", spec.Spot)
	case !(spec.T > 0) || math.IsInf(spec.T, 0):
		return fmt.Errorf("workload: expiry must be positive and finite, got %v years", spec.T)
	case math.IsNaN(spec.Rate) || math.IsInf(spec.Rate, 0):
		return fmt.Errorf("workload: rate must be finite, got %v", spec.Rate)
	case !(spec.MinMny > 0) || math.IsInf(spec.MinMny, 0):
		return fmt.Errorf("workload: minimum moneyness must be positive and finite, got %v", spec.MinMny)
	case math.IsNaN(spec.MaxMny) || math.IsInf(spec.MaxMny, 0) || spec.MinMny >= spec.MaxMny:
		return fmt.Errorf("workload: moneyness range [%v, %v] is empty or unordered", spec.MinMny, spec.MaxMny)
	}
	return nil
}

// Chain generates the contracts: strikes swept uniformly across the
// moneyness range with a small seeded jitter, volatilities from the
// smile.
func Chain(spec ChainSpec) ([]option.Option, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	smile := spec.Smile
	if smile == nil {
		smile = DefaultSmile
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	span := spec.MaxMny - spec.MinMny
	opts := make([]option.Option, spec.N)
	for i := range opts {
		frac := float64(i) / float64(spec.N)
		if spec.N > 1 {
			frac = float64(i) / float64(spec.N-1)
		}
		m := spec.MinMny + span*frac
		// Jitter within the local grid spacing keeps strikes distinct and
		// irregular, like a real quote tape.
		m += (rng.Float64() - 0.5) * span / float64(spec.N)
		m = math.Max(m, spec.MinMny/2)
		o := option.Option{
			Right:  spec.Right,
			Style:  spec.Style,
			Spot:   spec.Spot,
			Strike: spec.Spot * m,
			Rate:   spec.Rate,
			Sigma:  smile(m),
			T:      spec.T,
		}
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated invalid option %d: %w", i, err)
		}
		opts[i] = o
	}
	return opts, nil
}

// MixedBatch generates a deterministic batch that exercises every
// contract shape: calls and puts, American and European, spread strikes,
// volatilities and maturities. Used by correctness and RMSE experiments.
func MixedBatch(seed int64, n int) ([]option.Option, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: batch needs at least 1 option, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	opts := make([]option.Option, n)
	for i := range opts {
		o := option.Option{
			Right:  option.Put,
			Style:  option.American,
			Spot:   100,
			Strike: 70 + 60*rng.Float64(),
			Rate:   0.01 + 0.05*rng.Float64(),
			Sigma:  0.10 + 0.40*rng.Float64(),
			T:      0.25 + 1.5*rng.Float64(),
		}
		if i%2 == 1 {
			o.Right = option.Call
		}
		if i%3 == 2 {
			o.Style = option.European
		}
		opts[i] = o
	}
	return opts, nil
}

// Quote pairs a contract with its observed market price.
type Quote struct {
	Option option.Option
	Price  float64
}

// ReferenceQuotes prices the chain with the double-precision binomial
// reference at the given depth, producing the "market data ... based on a
// binomial representation" the implied-volatility solver consumes.
func ReferenceQuotes(opts []option.Option, steps, workers int) ([]Quote, error) {
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, err
	}
	prices, err := eng.PriceBatch(opts, workers)
	if err != nil {
		return nil, err
	}
	quotes := make([]Quote, len(opts))
	for i := range opts {
		quotes[i] = Quote{Option: opts[i], Price: prices[i]}
	}
	return quotes, nil
}
