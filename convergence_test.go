package binopt

import (
	"strings"
	"testing"
)

func TestConvergenceStudy(t *testing.T) {
	res, err := Convergence([]int{64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Errors must shrink with depth (CRR is O(1/N) up to kink wobble;
	// compare the extremes, which are far enough apart to be monotone).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.EuropeanErr >= first.EuropeanErr {
		t.Errorf("european error did not shrink: %g -> %g", first.EuropeanErr, last.EuropeanErr)
	}
	if last.AmericanErr >= first.AmericanErr {
		t.Errorf("american error did not shrink: %g -> %g", first.AmericanErr, last.AmericanErr)
	}
	for _, p := range res.Points {
		// The Leisen-Reimer tree beats CRR at every depth.
		if p.LRErr >= p.AmericanErr {
			t.Errorf("N=%d: LR error %g not below CRR %g", p.Steps, p.LRErr, p.AmericanErr)
		}
		if p.HostSeconds <= 0 {
			t.Errorf("N=%d: no host timing", p.Steps)
		}
		if !p.FPGALocalM9K || p.FPGAOptSec <= 0 {
			t.Errorf("N=%d: expected the DE4 to fit at the paper's knobs", p.Steps)
		}
	}
	// Throughput falls with depth (more nodes per option).
	if last.FPGAOptSec >= first.FPGAOptSec {
		t.Errorf("FPGA throughput should fall with N: %g -> %g", first.FPGAOptSec, last.FPGAOptSec)
	}
	if !strings.Contains(res.Text, "Discretisation study") {
		t.Errorf("text:\n%s", res.Text)
	}
}

func TestConvergenceValidation(t *testing.T) {
	if _, err := Convergence([]int{1}); err == nil {
		t.Error("steps < 2 should fail")
	}
}

func TestConvergenceDefaultList(t *testing.T) {
	res, err := Convergence(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("default list should have 6 depths, got %d", len(res.Points))
	}
}
