package binopt

import (
	"fmt"

	"binopt/internal/accel"
	"binopt/internal/device"
	"binopt/internal/perf"
	"binopt/internal/report"
)

// FutureWorkResult carries the §VI portability study: kernel IV.B
// projected onto the OpenCL targets the paper names for future work.
type FutureWorkResult struct {
	Estimates []perf.Estimate
	Text      string
}

// FutureWork projects the optimized kernel onto the embedded OpenCL
// targets of the paper's conclusion ("future work will focus on other
// hardware architectures supporting the OpenCL standard [16], [17]") and
// compares them with the three evaluated platforms on the throughput and
// energy axes. The interesting outcome: the embedded parts approach the
// FPGA's energy efficiency inside the 10 W budget, but miss the 2000
// options/s target in double precision.
func FutureWork(steps int) (FutureWorkResult, error) {
	if steps <= 0 {
		steps = 1024
	}
	var ests []perf.Estimate
	for _, name := range []string{"fpga-ivb", "gpu-ivb", "cpu-ref"} {
		p, err := accel.Get(name)
		if err != nil {
			return FutureWorkResult{}, err
		}
		e, err := p.Estimate(steps, accel.Options{})
		if err != nil {
			return FutureWorkResult{}, err
		}
		ests = append(ests, e)
	}
	// KeyStone ships pre-registered (the registry's one-file extension);
	// the Mali target the conclusion also names is wrapped ad hoc here.
	keystone, err := accel.Get("embedded-keystone")
	if err != nil {
		return FutureWorkResult{}, err
	}
	for _, p := range []accel.Platform{keystone, accel.NewEmbedded("embedded-mali", "Mali", device.ARMMali())} {
		for _, single := range []bool{false, true} {
			e, err := p.Estimate(steps, accel.Options{Single: single})
			if err != nil {
				return FutureWorkResult{}, err
			}
			ests = append(ests, e)
		}
	}

	tbl := report.NewTable("platform", "precision", "options/s", "watts", "options/J", "meets 2000/s", "meets 10 W")
	for _, e := range ests {
		tbl.AddRow(e.Platform, e.Precision,
			report.Sci(e.OptionsPerSec),
			fmt.Sprintf("%.1f", e.PowerWatts),
			report.Sci(e.OptionsPerJoule),
			yesNo(e.OptionsPerSec >= 2000),
			yesNo(e.PowerWatts <= 10))
	}
	text := fmt.Sprintf("Future-work portability study (§VI), kernel IV.B at N=%d\n%s", steps, tbl.String())
	return FutureWorkResult{Estimates: ests, Text: text}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
