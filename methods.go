package binopt

import (
	"fmt"
	"time"

	"binopt/internal/baw"
	"binopt/internal/bs"
	"binopt/internal/fdm"
	"binopt/internal/lattice"
	"binopt/internal/montecarlo"
	"binopt/internal/option"
	"binopt/internal/quadrature"
	"binopt/internal/report"
)

// MethodResult is one solver's showing in the method comparison.
type MethodResult struct {
	Method   string
	Params   string
	Price    float64
	AbsError float64 // versus the high-resolution reference
	Seconds  float64 // measured wall time on this machine
}

// MethodComparisonConfig scales experiment E5.
type MethodComparisonConfig struct {
	// Contract is the option under test; the zero value uses the demo
	// American put.
	Contract *Option
	// MCPaths sizes the Longstaff-Schwartz run (default 40000).
	MCPaths int
	// RefSteps sizes the lattice used as ground truth (default 16384).
	RefSteps int
}

// MethodComparison reruns the related-work argument of §II and the
// survey [12] on this machine: the same American option priced by the
// binomial tree (plain, Richardson-extrapolated and BBS-smoothed),
// Crank-Nicolson finite differences, QUAD integration, and
// Longstaff-Schwartz Monte Carlo, each timed and scored against a
// high-resolution lattice reference. Tree methods should win on
// time-to-accuracy; Monte Carlo should trail badly at matched accuracy —
// the premise of the paper's choice of the binomial model.
func MethodComparison(cfg MethodComparisonConfig) ([]MethodResult, string, error) {
	o := demoOption()
	if cfg.Contract != nil {
		o = *cfg.Contract
	}
	if cfg.MCPaths == 0 {
		cfg.MCPaths = 40000
	}
	if cfg.RefSteps == 0 {
		cfg.RefSteps = 16384
	}

	refEngine, err := lattice.NewEngine(cfg.RefSteps)
	if err != nil {
		return nil, "", err
	}
	ref, err := refEngine.PriceRichardson(o)
	if err != nil {
		return nil, "", err
	}

	timed := func(name, params string, f func() (float64, error)) (MethodResult, error) {
		start := time.Now()
		v, err := f()
		if err != nil {
			return MethodResult{}, fmt.Errorf("binopt: method %s: %w", name, err)
		}
		e := v - ref
		if e < 0 {
			e = -e
		}
		return MethodResult{
			Method:   name,
			Params:   params,
			Price:    v,
			AbsError: e,
			Seconds:  time.Since(start).Seconds(),
		}, nil
	}

	eng1024, err := lattice.NewEngine(1024)
	if err != nil {
		return nil, "", err
	}
	eng256, err := lattice.NewEngine(256)
	if err != nil {
		return nil, "", err
	}

	specs := []struct {
		name, params string
		f            func() (float64, error)
	}{
		{"binomial", "N=1024", func() (float64, error) { return eng1024.Price(o) }},
		{"binomial+richardson", "N=256 smoothed", func() (float64, error) { return eng256.PriceRichardson(o) }},
		{"binomial BBS", "N=256", func() (float64, error) { return eng256.PriceBBS(o, bs.Price) }},
		{"trinomial", "N=512", func() (float64, error) {
			te, err := lattice.NewTrinomialEngine(512)
			if err != nil {
				return 0, err
			}
			return te.Price(o)
		}},
		{"barone-adesi whaley", "closed form", func() (float64, error) { return baw.Price(o) }},
		{"crank-nicolson PSOR", "400x400", func() (float64, error) {
			return fdm.Price(o, fdm.Config{SpaceNodes: 400, TimeSteps: 400})
		}},
		{"QUAD", "512 nodes, 64 dates", func() (float64, error) {
			return quadrature.Price(o, quadrature.Config{SpaceNodes: 512, Dates: 64})
		}},
		{"monte carlo LSM", fmt.Sprintf("%d paths, 50 dates", cfg.MCPaths), func() (float64, error) {
			if o.Style == option.European {
				r, err := montecarlo.PriceEuropean(o, montecarlo.Config{
					Paths: cfg.MCPaths, Seed: 42, Antithetic: true})
				return r.Price, err
			}
			r, err := montecarlo.PriceAmerican(o, montecarlo.Config{
				Paths: cfg.MCPaths, Steps: 50, Seed: 42, Antithetic: true})
			return r.Price, err
		}},
	}

	var out []MethodResult
	for _, s := range specs {
		r, err := timed(s.name, s.params, s.f)
		if err != nil {
			return nil, "", err
		}
		out = append(out, r)
	}

	tbl := report.NewTable("method", "params", "price", "|error|", "seconds")
	for _, r := range out {
		tbl.AddRow(r.Method, r.Params,
			fmt.Sprintf("%.6f", r.Price),
			fmt.Sprintf("%.2e", r.AbsError),
			fmt.Sprintf("%.4f", r.Seconds))
	}
	text := fmt.Sprintf("Solver comparison on %s (reference %.6f from N=%d Richardson lattice)\n%s",
		o.String(), ref, cfg.RefSteps, tbl.String())
	return out, text, nil
}
