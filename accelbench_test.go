package binopt

import (
	"strings"
	"testing"
)

func TestAcceleratorBenchmark(t *testing.T) {
	res, err := AcceleratorBenchmark(Table2Config{Steps: 1024, RMSEOptions: 12, RMSESteps: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != 7 || len(res.Ranked) != 7 {
		t.Fatalf("got %d verdicts, %d ranked", len(res.Verdicts), len(res.Ranked))
	}
	// The paper's conclusion: under the strict use case nothing
	// qualifies.
	for _, v := range res.Verdicts {
		if v.Passed {
			t.Errorf("%s on %s should not pass the strict use case", v.Solution.Name, v.Solution.Platform)
		}
	}
	// Energy ranking: the single-precision GPU build tops the raw table
	// (as in the paper's own Table II: 340 vs 140 options/J) but fails
	// the accuracy requirement; among double-precision solutions the
	// FPGA IV.B build wins — the basis of the paper's "2x more energy
	// efficient than the GPU" claim.
	if !strings.Contains(res.Ranked[0].Name, "single") {
		t.Errorf("raw energy winner = %s, expected the single-precision GPU build", res.Ranked[0].Name)
	}
	var doubleWinner string
	for _, s := range res.Ranked {
		if strings.Contains(s.Name, "double") {
			doubleWinner = s.Name + "@" + s.Platform
			break
		}
	}
	if !strings.Contains(doubleWinner, "IV.B") || !strings.Contains(doubleWinner, "EP4SGX530") {
		t.Errorf("double-precision energy winner = %s, want IV.B on the DE4", doubleWinner)
	}
	// The straightforward kernel and the single-precision reference prop
	// up the bottom of the table.
	last := res.Ranked[len(res.Ranked)-1]
	if !strings.Contains(last.Name, "IV.A") && !strings.Contains(last.Name, "reference") {
		t.Errorf("energy loser = %s, expected IV.A or the reference", last.Name)
	}
	if !strings.Contains(res.Text, "energy ranking") {
		t.Errorf("text:\n%s", res.Text)
	}
}
