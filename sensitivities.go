package binopt

import (
	"fmt"

	"binopt/internal/volatility"
)

// Sensitivities computes the full Greeks of any pricing function by
// central finite differences — the solver-agnostic companion to the
// lattice's native Greeks, usable with PriceFDM, PriceQUAD, PriceBAW or
// a custom engine. The bump sizes are relative for spot and absolute for
// rate/volatility/time, the desk conventions.
func Sensitivities(pf volatility.PriceFunc, o Option) (Greeks, error) {
	if err := o.Validate(); err != nil {
		return Greeks{}, err
	}
	base, err := pf(o)
	if err != nil {
		return Greeks{}, fmt.Errorf("binopt: sensitivities base price: %w", err)
	}

	central := func(mutate func(*Option, float64), h float64) (float64, error) {
		up, dn := o, o
		mutate(&up, h)
		mutate(&dn, -h)
		vu, err := pf(up)
		if err != nil {
			return 0, err
		}
		vd, err := pf(dn)
		if err != nil {
			return 0, err
		}
		return (vu - vd) / (2 * h), nil
	}

	// The spot bump must dominate the solver's own grid resolution
	// (e.g. the FDM log-grid spacing), or the second difference
	// amplifies interpolation noise; 1% of spot is the robust choice.
	var g Greeks
	hs := 1e-2 * o.Spot
	if g.Delta, err = central(func(x *Option, d float64) { x.Spot += d }, hs); err != nil {
		return Greeks{}, err
	}
	// Gamma by second central difference.
	up, dn := o, o
	up.Spot += hs
	dn.Spot -= hs
	vu, err := pf(up)
	if err != nil {
		return Greeks{}, err
	}
	vd, err := pf(dn)
	if err != nil {
		return Greeks{}, err
	}
	g.Gamma = (vu - 2*base + vd) / (hs * hs)

	if g.Vega, err = central(func(x *Option, d float64) { x.Sigma += d }, 1e-3); err != nil {
		return Greeks{}, err
	}
	if g.Rho, err = central(func(x *Option, d float64) { x.Rate += d }, 1e-4); err != nil {
		return Greeks{}, err
	}
	// Theta: calendar decay, central in remaining life (guarded away
	// from expiry).
	ht := 1e-3
	if o.T <= 2*ht {
		ht = o.T / 4
	}
	if g.Theta, err = central(func(x *Option, d float64) { x.T -= d }, ht); err != nil {
		return Greeks{}, err
	}
	return g, nil
}
