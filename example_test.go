package binopt_test

import (
	"fmt"

	"binopt"
)

// ExamplePrice prices the paper's canonical contract shape: an American
// put on a 1024-step tree.
func ExamplePrice() {
	contract := binopt.Option{
		Right: binopt.Put, Style: binopt.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.20, T: 0.5,
	}
	price, err := binopt.Price(contract, 1024)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", price)
	// Output: 7.8525
}

// ExampleImpliedVol inverts a quote back to its volatility.
func ExampleImpliedVol() {
	contract := binopt.Option{
		Right: binopt.Put, Style: binopt.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.20, T: 0.5,
	}
	quote, err := binopt.Price(contract, 256)
	if err != nil {
		panic(err)
	}
	iv, err := binopt.ImpliedVol(quote, contract, 256)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.4f\n", iv)
	// Output: 0.2000
}

// ExamplePriceWithDividends values a call across a discrete dividend.
func ExamplePriceWithDividends() {
	contract := binopt.Option{
		Right: binopt.Call, Style: binopt.American,
		Spot: 100, Strike: 95, Rate: 0.03, Sigma: 0.20, T: 0.5,
	}
	with, err := binopt.PriceWithDividends(contract, []binopt.Dividend{{T: 0.25, Amount: 3}}, 512)
	if err != nil {
		panic(err)
	}
	without, err := binopt.Price(contract, 512)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dividend lowers the call: %v\n", with < without)
	// Output: dividend lowers the call: true
}

// ExamplePriceBAW shows the closed-form-speed American approximation.
func ExamplePriceBAW() {
	contract := binopt.Option{
		Right: binopt.Put, Style: binopt.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.20, T: 0.5,
	}
	baw, err := binopt.PriceBAW(contract)
	if err != nil {
		panic(err)
	}
	lattice, err := binopt.Price(contract, 2048)
	if err != nil {
		panic(err)
	}
	fmt.Printf("agree to a dime: %v\n", baw-lattice < 0.1 && lattice-baw < 0.1)
	// Output: agree to a dime: true
}
