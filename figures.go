package binopt

import (
	"binopt/internal/accel"
	"binopt/internal/opencl"
	"binopt/internal/trace"
)

// demoOption is the contract the figure renderers draw by default.
func demoOption() Option {
	return Option{
		Right: Put, Style: American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

// Figure1 renders the paper's Figure 1: a small binomial tree with leaf
// initialisation and backward iteration (the paper draws two steps).
func Figure1(steps int) (string, error) {
	if steps == 0 {
		steps = 2
	}
	return trace.Figure1(demoOption(), steps)
}

// Figure2 renders the paper's Figure 2: the OpenCL platform model, using
// the device descriptors of the paper's three evaluated platforms as the
// accel registry describes them.
func Figure2() string {
	var infos []opencl.DeviceInfo
	for _, name := range []string{"fpga-ivb", "gpu-ivb", "cpu-ref"} {
		if plat, err := accel.Get(name); err == nil {
			infos = append(infos, plat.Describe().OpenCL)
		}
	}
	p := opencl.NewPlatform("Altera SDK for OpenCL + NVIDIA OpenCL", "multi-vendor", "OpenCL 1.1", infos...)
	return trace.Figure2(p)
}

// Figure3 renders the paper's Figure 3: the straightforward kernel's
// flattened dataflow with ping-pong buffers (the paper draws N=2 with
// four options in flight at batch 3).
func Figure3(steps, batch, options int) (string, error) {
	if steps == 0 {
		steps = 2
	}
	if options == 0 {
		options = 4
	}
	if batch == 0 {
		batch = 3
	}
	return trace.Figure3(steps, batch, options)
}

// Figure4 renders the paper's Figure 4: the optimized kernel's
// local-memory dataflow over one backward step with its two barriers.
func Figure4(steps, t int) (string, error) {
	if steps == 0 {
		steps = 4
	}
	return trace.Figure4(steps, t)
}
