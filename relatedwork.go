package binopt

import (
	"fmt"

	"binopt/internal/heston"
	"binopt/internal/report"
)

// MLMCStudyResult carries the reproduction of the design-space finding of
// the paper's reference [4]: Multi-Level Monte Carlo as the best
// compromise for barrier options under the Heston model.
type MLMCStudyResult struct {
	MLMC       heston.MLMCResult
	PlainPrice float64
	PlainErr   float64
	Speedup    float64 // standard-MC cost / MLMC cost at matched error
	Text       string
}

// MLMCStudy prices a down-and-out call under Heston with both the Giles
// multi-level estimator and plain fine-grid Monte Carlo, and reports the
// cost ratio — the result that led [4] to select MLMC, which the paper's
// related-work section recounts. The contract and parameters are a
// standard equity set (negative correlation, Feller satisfied).
func MLMCStudy(paths int) (MLMCStudyResult, error) {
	if paths <= 0 {
		paths = 120000
	}
	p := heston.Params{
		Spot: 100, Rate: 0.03,
		V0: 0.04, Kappa: 2.0, Theta: 0.04, Xi: 0.3, Rho: -0.7,
	}
	const k, barrier, t = 100.0, 80.0, 0.5

	cfg := heston.MLMCConfig{
		Levels: 4, BaseSteps: 4, Refine: 4,
		PathsLevel0: paths, Seed: 17,
	}
	ml, err := heston.DownAndOutCallMLMC(p, k, barrier, t, cfg)
	if err != nil {
		return MLMCStudyResult{}, err
	}
	plain, err := heston.DownAndOutCallMC(p, k, barrier, t, heston.SimConfig{
		Paths: paths / 4, Steps: 256, Seed: 99,
	})
	if err != nil {
		return MLMCStudyResult{}, err
	}

	res := MLMCStudyResult{
		MLMC:       ml,
		PlainPrice: plain.Price,
		PlainErr:   plain.StdErr,
	}
	if ml.TotalCost > 0 {
		res.Speedup = ml.CostStandardMC / ml.TotalCost
	}

	tbl := report.NewTable("level", "steps", "paths", "E[P_l - P_{l-1}]", "variance", "cost")
	for _, l := range ml.Levels {
		tbl.AddRow(
			fmt.Sprintf("%d", l.Level),
			fmt.Sprintf("%d", l.Steps),
			fmt.Sprintf("%d", l.Paths),
			fmt.Sprintf("%+.5f", l.Mean),
			fmt.Sprintf("%.2e", l.Variance),
			fmt.Sprintf("%.3g", l.Cost),
		)
	}
	res.Text = fmt.Sprintf(
		"MLMC study ([4]): down-and-out call, Heston (kappa=2, theta=0.04, xi=0.3, rho=-0.7), K=100 B=80 T=0.5\n"+
			"%s\nMLMC price %.4f ± %.4f (cost %.3g path-steps)\n"+
			"plain MC   %.4f ± %.4f at 256 steps\n"+
			"cost of standard MC at matched error: %.3g path-steps (MLMC %.1fx cheaper)\n",
		tbl.String(), ml.Price, ml.StdErr, ml.TotalCost,
		plain.Price, plain.StdErr, ml.CostStandardMC, res.Speedup)
	return res, nil
}
