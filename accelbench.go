package binopt

import (
	"fmt"

	"binopt/internal/benchmark"
)

// AcceleratorBenchmarkResult carries the de Schryver-style qualification
// of every Table II solution against the paper's use-case requirement.
type AcceleratorBenchmarkResult struct {
	Verdicts []benchmark.Verdict
	Ranked   []benchmark.Solution
	Text     string
}

// AcceleratorBenchmark applies the comparison methodology of [4] — a
// solution must satisfy throughput, accuracy AND energy constraints at
// once — to the reproduced Table II rows, under the paper's own use case
// (2000 options/s, high accuracy, ~10 W). The expected outcome is the
// paper's own conclusion: nothing qualifies; the FPGA kernel IV.B comes
// closest, blocked by the Power-operator RMSE and the 7 W overshoot.
func AcceleratorBenchmark(cfg Table2Config) (AcceleratorBenchmarkResult, error) {
	t2, err := Table2(cfg)
	if err != nil {
		return AcceleratorBenchmarkResult{}, err
	}
	var sols []benchmark.Solution
	for _, r := range t2.Rows {
		sols = append(sols, benchmark.Solution{
			Name:          fmt.Sprintf("%s (%s)", r.Kernel, r.Precision),
			Platform:      r.Platform,
			Problem:       "American option pricing",
			Model:         "CRR binomial",
			OptionsPerSec: r.Estimate.OptionsPerSec,
			PowerWatts:    r.Estimate.PowerWatts,
			RMSE:          r.RMSE,
		})
	}
	req := benchmark.Requirement{MinOptionsPerSec: 2000, MaxRMSE: 1e-6, MaxWatts: 10}
	verdicts := benchmark.Qualify(sols, req)
	ranked := benchmark.RankByEnergy(sols)

	text := "Accelerator benchmark ([4] methodology) under the paper's use case\n" +
		benchmark.FormatVerdicts(verdicts, req) +
		"\nenergy ranking (J/option ascending):\n"
	for i, s := range ranked {
		text += fmt.Sprintf("  %d. %-24s %-22s %.3g mJ/option\n",
			i+1, s.Name, s.Platform, 1e3*s.JoulesPerOption())
	}
	return AcceleratorBenchmarkResult{Verdicts: verdicts, Ranked: ranked, Text: text}, nil
}
