package binopt

import (
	"bytes"
	"math"
	"testing"

	"binopt/internal/workload"
)

func TestBuildVolSurfaceFacade(t *testing.T) {
	var quotes []Quote
	for i, mat := range []float64{0.25, 0.75} {
		spec := workload.DefaultVolCurveSpec(int64(40 + i))
		spec.N = 12
		spec.T = mat
		spec.MinMny = 0.9
		spec.MaxMny = 1.1
		opts, err := workload.Chain(spec)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := workload.ReferenceQuotes(opts, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		quotes = append(quotes, qs...)
	}

	// Round-trip the tape through the CSV layer first, as a user would.
	var buf bytes.Buffer
	if err := SaveQuotes(&buf, quotes); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuotes(&buf)
	if err != nil {
		t.Fatal(err)
	}

	surf, skipped, err := BuildVolSurface(loaded, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if skipped > len(loaded)/2 {
		t.Errorf("too many skipped: %d of %d", skipped, len(loaded))
	}
	v, err := surf.Vol(100, 0.5) // interpolated between the two maturities
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.DefaultSmile(1.0)
	if math.Abs(v-truth) > 0.01 {
		t.Errorf("vol(100, 0.5) = %v, generating smile %v", v, truth)
	}
	if _, _, err := BuildVolSurface(loaded, 0, 0); err == nil {
		t.Error("zero steps should fail")
	}
}
