package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestRunSingleFit(t *testing.T) {
	out, err := capture(t, func() error { return run("ivb", 4, 1, 2, 1024, false) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kernel-IV.B", "Fmax", "node lanes"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	out, err = capture(t, func() error { return run("iva", 2, 3, 1, 1024, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kernel-IV.A") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunSweep(t *testing.T) {
	out, err := capture(t, func() error { return run("ivb", 1, 1, 1, 1024, true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "KNOB SWEEP") || !strings.Contains(out, "vec4") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", 1, 1, 1, 1024, false) }); err == nil {
		t.Error("unknown kernel should fail")
	}
	if _, err := capture(t, func() error { return run("ivb", 3, 1, 1, 1024, false) }); err == nil {
		t.Error("non-power-of-two vectorization should fail")
	}
	if _, err := capture(t, func() error { return run("ivb", 16, 8, 8, 1024, false) }); err == nil {
		t.Error("absurd knobs should fail the fitter")
	}
}
