// Command hlsfit drives the HLS compiler/fitter model directly: it
// compiles a kernel profile with chosen parallelisation knobs and prints
// the Quartus-style fit report, or sweeps the knob space the way the
// paper's "several compilation iterations" did.
//
//	hlsfit -kernel ivb -vec 4 -unroll 2
//	hlsfit -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"binopt"
	"binopt/internal/accel"
	"binopt/internal/hls"
)

func main() {
	var (
		kernel = flag.String("kernel", "ivb", "kernel profile: iva or ivb")
		vec    = flag.Int("vec", 1, "vectorization (power of two)")
		repl   = flag.Int("repl", 1, "compute-unit replication")
		unroll = flag.Int("unroll", 1, "inner-loop unroll factor")
		steps  = flag.Int("steps", 1024, "tree depth (sizes IV.B local memory)")
		sweep  = flag.Bool("sweep", false, "sweep the knob space for both kernels")
	)
	flag.Parse()

	if err := run(*kernel, *vec, *repl, *unroll, *steps, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "hlsfit:", err)
		os.Exit(1)
	}
}

func run(kernel string, vec, repl, unroll, steps int, sweep bool) error {
	if sweep {
		_, text, err := binopt.KnobSweep(steps)
		if err != nil {
			return err
		}
		fmt.Println("KNOB SWEEP (experiment E3) — DE4 / Stratix IV EP4SGX530")
		fmt.Println(text)
		return nil
	}

	var k accel.Kernel
	switch kernel {
	case "iva":
		k = accel.KernelIVA
	case "ivb":
		k = accel.KernelIVB
	default:
		return fmt.Errorf("unknown kernel %q (want iva or ivb)", kernel)
	}
	p, err := accel.Get("fpga-ivb")
	if err != nil {
		return err
	}
	fitter, ok := p.(accel.Fitter)
	if !ok {
		return fmt.Errorf("platform %s does not support fitting", p.Describe().Name)
	}
	rep, err := fitter.Fit(steps, k, hls.Knobs{Vectorize: vec, Replicate: repl, Unroll: unroll})
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	fmt.Printf("ALUTs %d, registers %d, memory bits %d, M9K %d, DSP %d\n",
		rep.ALUTs, rep.Registers, rep.MemoryBits, rep.M9K, rep.DSP18)
	fmt.Printf("Fmax %.2f MHz, power %.2f W, %d node lanes, pipeline depth %d cycles\n",
		rep.FmaxMHz, rep.PowerWatts, rep.NodeLanes, rep.PipelineDepthCyc)
	fmt.Println("area breakdown:")
	for _, c := range rep.Breakdown {
		fmt.Printf("  %-22s ALUTs %7d  regs %7d  M9K %5d  DSP %4d\n",
			c.Name, c.ALUTs, c.Registers, c.M9K, c.DSP18)
	}
	return nil
}
