package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestRunSmallCurve(t *testing.T) {
	out, err := capture(t, func() error { return run(24, 64, 3, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Implied volatility curve", "modelled DE4", "use-case target"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := capture(t, func() error { return run(10, -5, 1, 0) }); err == nil {
		t.Error("negative steps should fail")
	}
}
