// Command volcurve runs the paper's motivating use case: recover one
// implied-volatility curve from a chain of option quotes (2000 by
// default) and report the modelled accelerator cost of the pricing
// workload against the one-second-per-curve target.
//
//	volcurve -quotes 2000 -steps 1024 -seed 7
//
// Reducing -steps makes the host-side inversion fast enough for casual
// runs; the modelled FPGA timing always uses the requested depth.
package main

import (
	"flag"
	"fmt"
	"os"

	"binopt"
)

func main() {
	var (
		quotes  = flag.Int("quotes", 2000, "options per volatility curve")
		steps   = flag.Int("steps", 256, "tree depth for quote generation and inversion")
		seed    = flag.Int64("seed", 7, "chain generation seed")
		workers = flag.Int("workers", 0, "solver concurrency (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if err := run(*quotes, *steps, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "volcurve:", err)
		os.Exit(1)
	}
}

func run(quotes, steps int, seed int64, workers int) error {
	res, err := binopt.VolCurve(binopt.VolCurveConfig{
		Quotes: quotes, Steps: steps, Seed: seed, Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Text)
	if res.FPGASeconds <= 1 {
		fmt.Printf("use-case target met: %.3f s per curve on the modelled DE4 (< 1 s)\n", res.FPGASeconds)
	} else {
		fmt.Printf("use-case target missed: %.3f s per curve on the modelled DE4 (> 1 s)\n", res.FPGASeconds)
	}
	return nil
}
