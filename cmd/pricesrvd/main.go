// Command pricesrvd serves binomial option pricing over HTTP: the
// data-centre front end the paper's use case implies. Requests are
// micro-batched, scheduled across one shard per accel-registry platform
// (FPGA kernel IV.B, GTX660, Xeon reference, plus any extra registered
// target), answered from an LRU result cache when the tape repeats, and
// metered on /metrics.
//
//	pricesrvd -addr :8080 -steps 1024
//	pricesrvd -backends
//	curl -s localhost:8080/v1/price -d '{"right":"put","style":"american","spot":100,"strike":105,"rate":0.03,"sigma":0.2,"t":0.5}'
//
// POST /v1/scenarios revalues a whole portfolio under a set of market
// shocks (explicit list or a spot×vol×rate grid) in one request,
// answering per-scenario P&L, net Greeks and VaR/ES quantiles — the
// stress-testing workload `loadgen -scenarios` drives:
//
//	curl -s localhost:8080/v1/scenarios -d '{
//	  "portfolio":[{"contract":{"right":"put","style":"american","spot":100,"strike":105,"rate":0.03,"sigma":0.2,"t":0.5},"quantity":10}],
//	  "grid":{"spot":{"from":0.8,"to":1.2,"n":9},"vol":{"from":0.9,"to":1.3,"n":5}},
//	  "quantiles":[0.95,0.99]}'
//
// Observability: span tracing is on by default (-trace=false disables);
// GET /debug/trace returns the recent span window as Chrome trace-event
// JSON for chrome://tracing or Perfetto, decomposing every priced
// option into batch/queue/compute/readback host phases and the modelled
// device commands of the shard that priced it. -debug-addr starts a
// second listener with net/http/pprof (plus the same /debug/trace), so
// profiling never shares a port with production traffic. GET /debug/slo
// reports the multi-window burn-rate monitor over the latency and
// availability objectives (-slo=false disables; /healthz folds the same
// state in as "burning"), and -log-level selects the structured
// (log/slog) request-log verbosity, trace-ID-tagged so a slow request's
// log lines grep straight into its /debug/trace timeline.
//
// Chaos: -faults arms a deterministic fault injector on the backend
// engines (spec grammar in internal/faults), exercising the pool's
// circuit breakers and retry-with-failover; pair with `loadgen -chaos`
// to verify no injected fault ever reaches a client:
//
//	pricesrvd -faults 'gpu-ivb:err=0.2' -fault-seed 7
//	loadgen -chaos -target 0
//
// SIGINT/SIGTERM drain gracefully: the listener stops, the batching
// queue flushes, and every admitted option completes before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"binopt/internal/accel"
	"binopt/internal/faults"
	"binopt/internal/obslog"
	"binopt/internal/serve"
	"binopt/internal/slo"
	"binopt/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		steps     = flag.Int("steps", 1024, "binomial tree depth (the paper evaluates at 1024)")
		maxBatch  = flag.Int("max-batch", 64, "micro-batch size trigger (options per flush)")
		flushMs   = flag.Duration("flush", 2*time.Millisecond, "micro-batch deadline trigger")
		queue     = flag.Int("queue-depth", 8192, "max admitted options before 429")
		cacheSize = flag.Int("cache", 65536, "LRU result cache capacity (negative disables)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		backends  = flag.Bool("backends", false, "list the registered backend platforms and exit")
		trace     = flag.Bool("trace", true, "span tracing and the /debug/trace Chrome-trace endpoint")
		traceBuf  = flag.Int("trace-buf", 65536, "span ring capacity (older spans are dropped)")
		debugAddr = flag.String("debug-addr", "", "separate listener for net/http/pprof and /debug/trace (empty disables)")
		node      = flag.String("node", "", "node name tagged onto spans and log lines (useful when several pricesrvd form a fleet)")

		sloOn      = flag.Bool("slo", true, "multi-window burn-rate SLO monitor and the /debug/slo endpoint")
		sloLatency = flag.Duration("slo-latency", 0, "per-request latency threshold for the SLO latency objective (0 = default 250ms)")
		logLevel   = flag.String("log-level", "info", "structured log level: debug, info, warn, error, or off")

		faultSpec = flag.String("faults", "", "chaos: fault spec armed on the backend engines, e.g. 'gpu-ivb:err=0.2' or '*:lat=5ms@0.1' (empty disables)")
		faultSeed = flag.Int64("fault-seed", 1, "chaos: fault schedule PRNG seed (same seed, same schedule)")

		maxAttempts = flag.Int("max-attempts", 3, "shards a single option may be tried on before its error reaches the client (1 disables failover)")
		brThreshold = flag.Float64("breaker-threshold", 0, "windowed error rate that opens a shard's circuit breaker (0 = default 0.1)")
		brCooldown  = flag.Duration("breaker-cooldown", 0, "how long an open breaker rejects dispatch before probing (0 = default 250ms)")
	)
	flag.Parse()

	if *backends {
		if err := listBackends(os.Stdout, *steps); err != nil {
			fmt.Fprintln(os.Stderr, "pricesrvd:", err)
			os.Exit(1)
		}
		return
	}

	cfg := serverConfig{
		addr: *addr, steps: *steps, maxBatch: *maxBatch, flush: *flushMs,
		queue: *queue, cacheSize: *cacheSize, drain: *drain,
		trace: *trace, traceBuf: *traceBuf, debugAddr: *debugAddr, node: *node,
		sloOn: *sloOn, sloLatency: *sloLatency, logLevel: *logLevel,
		faultSpec: *faultSpec, faultSeed: *faultSeed,
		maxAttempts: *maxAttempts, brThreshold: *brThreshold, brCooldown: *brCooldown,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pricesrvd:", err)
		os.Exit(1)
	}
}

// listBackends prints every accel-registry platform the server would
// shard across, with its modelled rate and power at the chosen depth.
func listBackends(w io.Writer, steps int) error {
	for _, p := range accel.Platforms() {
		d := p.Describe()
		est, err := p.Estimate(steps, accel.Options{})
		if err != nil {
			return fmt.Errorf("backend %s: %w", d.Name, err)
		}
		fmt.Fprintf(w, "%-18s %-9s %-24s kernel %-9s %10.0f options/s  %5.1f W\n",
			d.Name, d.Kind, d.Device, d.DefaultKernel, est.OptionsPerSec, est.PowerWatts)
	}
	return nil
}

type serverConfig struct {
	addr      string
	steps     int
	maxBatch  int
	flush     time.Duration
	queue     int
	cacheSize int
	drain     time.Duration
	trace     bool
	traceBuf  int
	debugAddr string
	node      string

	sloOn      bool
	sloLatency time.Duration
	logLevel   string

	faultSpec   string
	faultSeed   int64
	maxAttempts int
	brThreshold float64
	brCooldown  time.Duration
}

// parseLogLevel maps the -log-level flag onto slog's scale. The second
// return is false for "off": structured logging disabled outright, not
// merely filtered.
func parseLogLevel(s string) (slog.Level, bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, true, nil
	case "info", "":
		return slog.LevelInfo, true, nil
	case "warn":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	case "off":
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("-log-level must be debug, info, warn, error or off, got %q", s)
}

// debugHandler builds the auxiliary listener's mux: the pprof family
// plus the trace endpoint, so one curl fetches either a CPU profile or
// a request timeline.
func debugHandler(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/trace", srv.Handler()) // serves 404 when tracing is off
	return mux
}

// checkFaultScopes rejects fault clauses naming a backend the pool does
// not contain — a typoed shard name must fail loudly, not silently arm
// nothing.
func checkFaultScopes(inj *faults.Injector, backends []serve.BackendConfig) error {
	known := make(map[string]bool, len(backends))
	for _, bc := range backends {
		known[bc.Name] = true
	}
	for _, name := range inj.Backends() {
		if name != "*" && !known[name] {
			return fmt.Errorf("fault spec scopes unknown backend %q (have %v)", name, accel.Names())
		}
	}
	return nil
}

// armFaults installs the injector's hooks on the backend engines. It
// runs after serve.New so the startup parity probe prices clean — chaos
// starts with serving, not with construction.
func armFaults(inj *faults.Injector, backends []serve.BackendConfig) {
	for _, bc := range backends {
		if bc.Engine == nil {
			continue
		}
		if h := inj.HookFor(bc.Name); h != nil {
			bc.Engine.SetFaultHook(h)
			log.Printf("pricesrvd: chaos: faults armed on %s (spec %q, seed %d)", bc.Name, inj.String(), inj.Seed())
		}
	}
}

func run(cfg serverConfig) error {
	var tracer *telemetry.Tracer
	if cfg.trace {
		tracer = telemetry.New(cfg.traceBuf)
	}
	level, logOn, err := parseLogLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	var logger *slog.Logger
	if logOn {
		logger = obslog.New(os.Stderr, "serve", level)
	}
	var sloOpts *slo.Options
	if cfg.sloOn {
		sloOpts = &slo.Options{LatencyThreshold: cfg.sloLatency}
	}
	inj, err := faults.Parse(cfg.faultSpec, cfg.faultSeed)
	if err != nil {
		return err
	}
	backends, err := serve.DefaultBackends(cfg.steps)
	if err != nil {
		return err
	}
	if inj.Active() {
		if err := checkFaultScopes(inj, backends); err != nil {
			return err
		}
	}
	srv, err := serve.New(serve.Config{
		Steps:         cfg.steps,
		MaxBatch:      cfg.maxBatch,
		FlushInterval: cfg.flush,
		QueueDepth:    cfg.queue,
		CacheSize:     cfg.cacheSize,
		Backends:      backends,
		MaxAttempts:   cfg.maxAttempts,
		Breaker: serve.BreakerConfig{
			Threshold: cfg.brThreshold,
			Cooldown:  cfg.brCooldown,
		},
		Tracer: tracer,
		Node:   cfg.node,
		SLO:    sloOpts,
		Logger: logger,
	})
	if err != nil {
		return err
	}
	if inj.Active() {
		armFaults(inj, backends)
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("pricesrvd: listening on %s (steps=%d, max-batch=%d, flush=%s, queue=%d, cache=%d, trace=%v)",
			cfg.addr, cfg.steps, cfg.maxBatch, cfg.flush, cfg.queue, cfg.cacheSize, cfg.trace)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	var dbgSrv *http.Server
	if cfg.debugAddr != "" {
		dbgSrv = &http.Server{Addr: cfg.debugAddr, Handler: debugHandler(srv)}
		go func() {
			log.Printf("pricesrvd: debug listener (pprof + trace) on %s", cfg.debugAddr)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pricesrvd: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("pricesrvd: draining (%d options in flight, budget %s)", srv.QueueDepth(), cfg.drain)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if dbgSrv != nil {
		dbgSrv.Shutdown(dctx)
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(dctx); err != nil {
		return err
	}
	log.Printf("pricesrvd: drained cleanly")
	return <-errc
}
