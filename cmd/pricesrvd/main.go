// Command pricesrvd serves binomial option pricing over HTTP: the
// data-centre front end the paper's use case implies. Requests are
// micro-batched, scheduled across one shard per accel-registry platform
// (FPGA kernel IV.B, GTX660, Xeon reference, plus any extra registered
// target), answered from an LRU result cache when the tape repeats, and
// metered on /metrics.
//
//	pricesrvd -addr :8080 -steps 1024
//	pricesrvd -backends
//	curl -s localhost:8080/v1/price -d '{"right":"put","style":"american","spot":100,"strike":105,"rate":0.03,"sigma":0.2,"t":0.5}'
//
// SIGINT/SIGTERM drain gracefully: the listener stops, the batching
// queue flushes, and every admitted option completes before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"binopt/internal/accel"
	"binopt/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		steps     = flag.Int("steps", 1024, "binomial tree depth (the paper evaluates at 1024)")
		maxBatch  = flag.Int("max-batch", 64, "micro-batch size trigger (options per flush)")
		flushMs   = flag.Duration("flush", 2*time.Millisecond, "micro-batch deadline trigger")
		queue     = flag.Int("queue-depth", 8192, "max admitted options before 429")
		cacheSize = flag.Int("cache", 65536, "LRU result cache capacity (negative disables)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		backends  = flag.Bool("backends", false, "list the registered backend platforms and exit")
	)
	flag.Parse()

	if *backends {
		if err := listBackends(os.Stdout, *steps); err != nil {
			fmt.Fprintln(os.Stderr, "pricesrvd:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*addr, *steps, *maxBatch, *flushMs, *queue, *cacheSize, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "pricesrvd:", err)
		os.Exit(1)
	}
}

// listBackends prints every accel-registry platform the server would
// shard across, with its modelled rate and power at the chosen depth.
func listBackends(w io.Writer, steps int) error {
	for _, p := range accel.Platforms() {
		d := p.Describe()
		est, err := p.Estimate(steps, accel.Options{})
		if err != nil {
			return fmt.Errorf("backend %s: %w", d.Name, err)
		}
		fmt.Fprintf(w, "%-18s %-9s %-24s kernel %-9s %10.0f options/s  %5.1f W\n",
			d.Name, d.Kind, d.Device, d.DefaultKernel, est.OptionsPerSec, est.PowerWatts)
	}
	return nil
}

func run(addr string, steps, maxBatch int, flush time.Duration, queue, cacheSize int, drain time.Duration) error {
	srv, err := serve.New(serve.Config{
		Steps:         steps,
		MaxBatch:      maxBatch,
		FlushInterval: flush,
		QueueDepth:    queue,
		CacheSize:     cacheSize,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("pricesrvd: listening on %s (steps=%d, max-batch=%d, flush=%s, queue=%d, cache=%d)",
			addr, steps, maxBatch, flush, queue, cacheSize)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("pricesrvd: draining (%d options in flight, budget %s)", srv.QueueDepth(), drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Close(dctx); err != nil {
		return err
	}
	log.Printf("pricesrvd: drained cleanly")
	return <-errc
}
