package main

import (
	"strings"
	"testing"

	"binopt/internal/accel"
)

// TestListBackends: -backends enumerates every accel-registry platform,
// including the self-registered embedded target.
func TestListBackends(t *testing.T) {
	var b strings.Builder
	if err := listBackends(&b, 512); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range accel.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing platform %s:\n%s", name, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(accel.Names()) {
		t.Errorf("want one line per platform:\n%s", out)
	}
}

func TestListBackendsRejectsBadDepth(t *testing.T) {
	var b strings.Builder
	if err := listBackends(&b, 0); err == nil {
		t.Fatal("steps=0 should fail")
	}
}
