// Command pricefleet runs the distributed pricing fabric: a
// consistent-hash router over a fleet of pricing nodes, speaking the
// same /v1/price API as a single pricesrvd — clients cannot tell one
// board from a rack. Two modes:
//
// In-process mode boots M full serving nodes inside this binary, each
// with its own shard pool, result cache and gossip wiring — the whole
// modelled data centre in one command:
//
//	pricefleet -addr :9090 -nodes 3 -steps 1024
//	loadgen -via-router http://127.0.0.1:9090
//
// Join mode routes over externally started nodes instead (e.g. one
// pricesrvd per machine):
//
//	pricesrvd -addr :8081 & pricesrvd -addr :8082 &
//	pricefleet -addr :9090 -join http://127.0.0.1:8081,http://127.0.0.1:8082
//
// POST /v1/scenarios routes portfolio stress grids across the fleet:
// the scenario axis is sharded over the ring members by shock key,
// each node revalues its slice (exactly one computes the Greeks pass),
// and the router merges the answers in scenario order and recomputes
// the VaR/ES quantiles over the merged P&L — bit-identical to the same
// request answered by a solo node, which `loadgen -scenarios` with two
// -targets verifies end to end.
//
// The router adds fleet endpoints on top of the node API:
// GET /metrics carries the fleet roll-up (summed options/s, fleet
// joules per option, ring-ownership and per-node liveness gauges);
// POST /v1/invalidate broadcasts a cache-generation bump to every node.
// GET /debug/trace serves the fleet-merged Chrome trace: the router's
// route/forward/merge spans plus every member's host and modelled
// device spans, pulled incrementally over /debug/spans, clock-aligned
// via the heartbeat and stitched by W3C traceparent into one
// distributed trace per request. GET /debug/slo reports the router's
// multi-window burn-rate monitor, which also folds into /healthz as
// status "burning".
// In-process mode also mounts chaos controls for scripted kill tests:
// GET /fleet/nodes lists the members, POST /fleet/kill?node=N yanks
// one node's listener and connections mid-flight — the smoke test's
// power cut.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"binopt/internal/cluster"
	"binopt/internal/obslog"
	"binopt/internal/serve"
	"binopt/internal/slo"
	"binopt/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "router listen address")
		nodes       = flag.Int("nodes", 3, "in-process fleet size (ignored with -join)")
		join        = flag.String("join", "", "comma-separated base URLs of external nodes to route over instead of booting an in-process fleet")
		steps       = flag.Int("steps", 1024, "binomial tree depth (the paper evaluates at 1024)")
		cacheSize   = flag.Int("cache", 65536, "per-node LRU result cache capacity (negative disables; in-process mode)")
		vnodes      = flag.Int("vnodes", 128, "virtual nodes per member on the hash ring")
		seed        = flag.Uint64("seed", 1, "ring placement seed (same seed, same ownership)")
		hedge       = flag.Duration("hedge", 0, "hedge delay: re-send a straggling sub-batch to the ring successor after this long (0 disables)")
		maxAttempts = flag.Int("max-attempts", 3, "distinct nodes a sub-batch may be tried on before the client sees an error")
		heartbeat   = flag.Duration("heartbeat", 250*time.Millisecond, "membership health-poll interval")
		trace       = flag.Bool("trace", true, "distributed tracing: router spans, traceparent propagation to nodes, and the merged /debug/trace endpoint")
		traceBuf    = flag.Int("trace-buf", 65536, "span ring capacity (router ring; in-process nodes each get a ring of the same size)")
		sloOn       = flag.Bool("slo", true, "multi-window burn-rate SLO monitor on the router (and in-process nodes) with the /debug/slo endpoint")
		sloLatency  = flag.Duration("slo-latency", 0, "per-request latency threshold for the SLO latency objective (0 = default 250ms)")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn, error, or off")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	cfg := fleetConfig{
		addr: *addr, nodes: *nodes, join: *join, steps: *steps,
		cacheSize: *cacheSize, vnodes: *vnodes, seed: *seed,
		hedge: *hedge, maxAttempts: *maxAttempts, heartbeat: *heartbeat,
		trace: *trace, traceBuf: *traceBuf, drain: *drain,
		sloOn: *sloOn, sloLatency: *sloLatency, logLevel: *logLevel,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pricefleet:", err)
		os.Exit(1)
	}
}

type fleetConfig struct {
	addr        string
	nodes       int
	join        string
	steps       int
	cacheSize   int
	vnodes      int
	seed        uint64
	hedge       time.Duration
	maxAttempts int
	heartbeat   time.Duration
	trace       bool
	traceBuf    int
	sloOn       bool
	sloLatency  time.Duration
	logLevel    string
	drain       time.Duration
}

// parseLogLevel maps the -log-level flag onto slog's scale. The second
// return is false for "off": structured logging disabled outright, not
// merely filtered.
func parseLogLevel(s string) (slog.Level, bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, true, nil
	case "info", "":
		return slog.LevelInfo, true, nil
	case "warn":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	case "off":
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("-log-level must be debug, info, warn, error or off, got %q", s)
}

// buildMembers resolves the membership: external URLs under -join, or a
// freshly booted in-process fleet otherwise (returned for chaos control
// and shutdown; nil in join mode). sloOpts and nodeLog ride into each
// in-process node's serve config; the Tracer passed there is a capacity
// template — LocalFleet gives every node its own fresh span ring, which
// is what lets the router's trace aggregator pull per-node cursors.
func buildMembers(cfg fleetConfig, sloOpts *slo.Options, nodeLog *slog.Logger) ([]cluster.Node, *cluster.LocalFleet, error) {
	if cfg.join != "" {
		var members []cluster.Node
		for i, raw := range strings.Split(cfg.join, ",") {
			u := strings.TrimSpace(raw)
			if u == "" {
				continue
			}
			members = append(members, cluster.Node{Name: fmt.Sprintf("node-%d", i), BaseURL: u})
		}
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("-join lists no usable URLs")
		}
		return members, nil, nil
	}
	var nodeTracer *telemetry.Tracer
	if cfg.trace {
		nodeTracer = telemetry.New(cfg.traceBuf)
	}
	fleet, err := cluster.NewLocalFleet(cfg.nodes, serve.Config{
		Steps:     cfg.steps,
		CacheSize: cfg.cacheSize,
		Tracer:    nodeTracer,
		SLO:       sloOpts,
		Logger:    nodeLog,
	})
	if err != nil {
		return nil, nil, err
	}
	return fleet.Nodes(), fleet, nil
}

// fleetHandler mounts the router API plus, when an in-process fleet is
// attached, the chaos controls the smoke script drives.
func fleetHandler(rt *cluster.Router, fleet *cluster.LocalFleet) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mux.HandleFunc("/fleet/nodes", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			Name    string `json:"name"`
			BaseURL string `json:"base_url"`
			Killed  bool   `json:"killed,omitempty"`
		}
		var out []row
		if fleet != nil {
			for i, n := range fleet.Nodes() {
				out = append(out, row{Name: n.Name, BaseURL: n.BaseURL, Killed: fleet.Killed(i)})
			}
		} else {
			for _, n := range rt.Ring().Nodes() {
				out = append(out, row{Name: n})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/fleet/kill", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if fleet == nil {
			http.Error(w, "kill is only available for in-process fleets", http.StatusBadRequest)
			return
		}
		i, err := strconv.Atoi(r.URL.Query().Get("node"))
		if err != nil || i < 0 || i >= fleet.Len() {
			http.Error(w, fmt.Sprintf("node must be 0..%d", fleet.Len()-1), http.StatusBadRequest)
			return
		}
		fleet.Kill(i)
		log.Printf("pricefleet: chaos: node %d killed (listener and connections torn down)", i)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"killed": i})
	})
	return mux
}

func run(cfg fleetConfig) error {
	level, logOn, err := parseLogLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	var routerLog, nodeLog *slog.Logger
	if logOn {
		routerLog = obslog.New(os.Stderr, "router", level)
		nodeLog = obslog.New(os.Stderr, "serve", level)
	}
	var sloOpts *slo.Options
	if cfg.sloOn {
		sloOpts = &slo.Options{LatencyThreshold: cfg.sloLatency}
	}

	members, fleet, err := buildMembers(cfg, sloOpts, nodeLog)
	if err != nil {
		return err
	}

	var tracer *telemetry.Tracer
	if cfg.trace {
		tracer = telemetry.New(cfg.traceBuf)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:       members,
		Steps:       cfg.steps,
		VNodes:      cfg.vnodes,
		Seed:        cfg.seed,
		Hedge:       cfg.hedge,
		MaxAttempts: cfg.maxAttempts,
		Heartbeat:   cfg.heartbeat,
		Tracer:      tracer,
		SLO:         sloOpts,
		Logger:      routerLog,
	})
	if err != nil {
		if fleet != nil {
			fleet.Close(context.Background())
		}
		return err
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: fleetHandler(rt, fleet)}
	errc := make(chan error, 1)
	go func() {
		mode := "join"
		if fleet != nil {
			mode = "in-process"
		}
		log.Printf("pricefleet: routing %d nodes (%s) on %s (steps=%d, vnodes=%d, seed=%d, hedge=%s, heartbeat=%s)",
			len(members), mode, cfg.addr, cfg.steps, cfg.vnodes, cfg.seed, cfg.hedge, cfg.heartbeat)
		for _, n := range members {
			log.Printf("pricefleet: member %s at %s", n.Name, n.BaseURL)
		}
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("pricefleet: draining (budget %s)", cfg.drain)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	rt.Close()
	if fleet != nil {
		if err := fleet.Close(dctx); err != nil {
			return err
		}
	}
	log.Printf("pricefleet: drained cleanly")
	return <-errc
}
