// Command pricefleet runs the distributed pricing fabric: a
// consistent-hash router over a fleet of pricing nodes, speaking the
// same /v1/price API as a single pricesrvd — clients cannot tell one
// board from a rack. Two modes:
//
// In-process mode boots M full serving nodes inside this binary, each
// with its own shard pool, result cache and gossip wiring — the whole
// modelled data centre in one command:
//
//	pricefleet -addr :9090 -nodes 3 -steps 1024
//	loadgen -via-router http://127.0.0.1:9090
//
// Join mode routes over externally started nodes instead (e.g. one
// pricesrvd per machine):
//
//	pricesrvd -addr :8081 & pricesrvd -addr :8082 &
//	pricefleet -addr :9090 -join http://127.0.0.1:8081,http://127.0.0.1:8082
//
// The router adds fleet endpoints on top of the node API:
// GET /metrics carries the fleet roll-up (summed options/s, fleet
// joules per option, ring-ownership and per-node liveness gauges);
// POST /v1/invalidate broadcasts a cache-generation bump to every node.
// In-process mode also mounts chaos controls for scripted kill tests:
// GET /fleet/nodes lists the members, POST /fleet/kill?node=N yanks
// one node's listener and connections mid-flight — the smoke test's
// power cut.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"binopt/internal/cluster"
	"binopt/internal/serve"
	"binopt/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "router listen address")
		nodes       = flag.Int("nodes", 3, "in-process fleet size (ignored with -join)")
		join        = flag.String("join", "", "comma-separated base URLs of external nodes to route over instead of booting an in-process fleet")
		steps       = flag.Int("steps", 1024, "binomial tree depth (the paper evaluates at 1024)")
		cacheSize   = flag.Int("cache", 65536, "per-node LRU result cache capacity (negative disables; in-process mode)")
		vnodes      = flag.Int("vnodes", 128, "virtual nodes per member on the hash ring")
		seed        = flag.Uint64("seed", 1, "ring placement seed (same seed, same ownership)")
		hedge       = flag.Duration("hedge", 0, "hedge delay: re-send a straggling sub-batch to the ring successor after this long (0 disables)")
		maxAttempts = flag.Int("max-attempts", 3, "distinct nodes a sub-batch may be tried on before the client sees an error")
		heartbeat   = flag.Duration("heartbeat", 250*time.Millisecond, "membership health-poll interval")
		trace       = flag.Bool("trace", true, "router span tracing and the /debug/trace endpoint")
		traceBuf    = flag.Int("trace-buf", 65536, "router span ring capacity")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	cfg := fleetConfig{
		addr: *addr, nodes: *nodes, join: *join, steps: *steps,
		cacheSize: *cacheSize, vnodes: *vnodes, seed: *seed,
		hedge: *hedge, maxAttempts: *maxAttempts, heartbeat: *heartbeat,
		trace: *trace, traceBuf: *traceBuf, drain: *drain,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pricefleet:", err)
		os.Exit(1)
	}
}

type fleetConfig struct {
	addr        string
	nodes       int
	join        string
	steps       int
	cacheSize   int
	vnodes      int
	seed        uint64
	hedge       time.Duration
	maxAttempts int
	heartbeat   time.Duration
	trace       bool
	traceBuf    int
	drain       time.Duration
}

// buildMembers resolves the membership: external URLs under -join, or a
// freshly booted in-process fleet otherwise (returned for chaos control
// and shutdown; nil in join mode).
func buildMembers(cfg fleetConfig) ([]cluster.Node, *cluster.LocalFleet, error) {
	if cfg.join != "" {
		var members []cluster.Node
		for i, raw := range strings.Split(cfg.join, ",") {
			u := strings.TrimSpace(raw)
			if u == "" {
				continue
			}
			members = append(members, cluster.Node{Name: fmt.Sprintf("node-%d", i), BaseURL: u})
		}
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("-join lists no usable URLs")
		}
		return members, nil, nil
	}
	fleet, err := cluster.NewLocalFleet(cfg.nodes, serve.Config{
		Steps:     cfg.steps,
		CacheSize: cfg.cacheSize,
	})
	if err != nil {
		return nil, nil, err
	}
	return fleet.Nodes(), fleet, nil
}

// fleetHandler mounts the router API plus, when an in-process fleet is
// attached, the chaos controls the smoke script drives.
func fleetHandler(rt *cluster.Router, fleet *cluster.LocalFleet) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mux.HandleFunc("/fleet/nodes", func(w http.ResponseWriter, r *http.Request) {
		type row struct {
			Name    string `json:"name"`
			BaseURL string `json:"base_url"`
			Killed  bool   `json:"killed,omitempty"`
		}
		var out []row
		if fleet != nil {
			for i, n := range fleet.Nodes() {
				out = append(out, row{Name: n.Name, BaseURL: n.BaseURL, Killed: fleet.Killed(i)})
			}
		} else {
			for _, n := range rt.Ring().Nodes() {
				out = append(out, row{Name: n})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/fleet/kill", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if fleet == nil {
			http.Error(w, "kill is only available for in-process fleets", http.StatusBadRequest)
			return
		}
		i, err := strconv.Atoi(r.URL.Query().Get("node"))
		if err != nil || i < 0 || i >= fleet.Len() {
			http.Error(w, fmt.Sprintf("node must be 0..%d", fleet.Len()-1), http.StatusBadRequest)
			return
		}
		fleet.Kill(i)
		log.Printf("pricefleet: chaos: node %d killed (listener and connections torn down)", i)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"killed": i})
	})
	return mux
}

func run(cfg fleetConfig) error {
	members, fleet, err := buildMembers(cfg)
	if err != nil {
		return err
	}

	var tracer *telemetry.Tracer
	if cfg.trace {
		tracer = telemetry.New(cfg.traceBuf)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:       members,
		Steps:       cfg.steps,
		VNodes:      cfg.vnodes,
		Seed:        cfg.seed,
		Hedge:       cfg.hedge,
		MaxAttempts: cfg.maxAttempts,
		Heartbeat:   cfg.heartbeat,
		Tracer:      tracer,
	})
	if err != nil {
		if fleet != nil {
			fleet.Close(context.Background())
		}
		return err
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: fleetHandler(rt, fleet)}
	errc := make(chan error, 1)
	go func() {
		mode := "join"
		if fleet != nil {
			mode = "in-process"
		}
		log.Printf("pricefleet: routing %d nodes (%s) on %s (steps=%d, vnodes=%d, seed=%d, hedge=%s, heartbeat=%s)",
			len(members), mode, cfg.addr, cfg.steps, cfg.vnodes, cfg.seed, cfg.hedge, cfg.heartbeat)
		for _, n := range members {
			log.Printf("pricefleet: member %s at %s", n.Name, n.BaseURL)
		}
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("pricefleet: draining (budget %s)", cfg.drain)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	rt.Close()
	if fleet != nil {
		if err := fleet.Close(dctx); err != nil {
			return err
		}
	}
	log.Printf("pricefleet: drained cleanly")
	return <-errc
}
