package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"binopt/internal/cluster"
	"binopt/internal/serve"
)

// TestFleetHandlerChaosControls: the admin surface the smoke script
// drives — list members, kill one, see it marked killed, and watch the
// router keep serving prices around the corpse.
func TestFleetHandlerChaosControls(t *testing.T) {
	const steps = 64
	fleet, err := cluster.NewLocalFleet(3, serve.Config{Steps: steps})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fleet.Close(ctx)
	}()
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes: fleet.Nodes(), Steps: steps,
		Heartbeat: 20 * time.Millisecond, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer rt.Close()
	hs := httptest.NewServer(fleetHandler(rt, fleet))
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/fleet/nodes")
	if err != nil {
		t.Fatalf("GET /fleet/nodes: %v", err)
	}
	var rows []struct {
		Name    string `json:"name"`
		BaseURL string `json:"base_url"`
		Killed  bool   `json:"killed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if len(rows) != 3 || rows[0].BaseURL == "" || rows[0].Killed {
		t.Fatalf("rows = %+v, want 3 live members with URLs", rows)
	}

	resp, err = http.Post(hs.URL+"/fleet/kill?node=1", "", nil)
	if err != nil {
		t.Fatalf("POST /fleet/kill: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("kill: HTTP %d", resp.StatusCode)
	}
	if !fleet.Killed(1) {
		t.Fatal("node 1 not killed")
	}

	// Pricing still works through the two survivors.
	body := strings.NewReader(`{"right":"put","style":"american","spot":100,"strike":105,"rate":0.03,"sigma":0.2,"t":0.5}`)
	resp, err = http.Post(hs.URL+"/v1/price", "application/json", body)
	if err != nil {
		t.Fatalf("price after kill: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price after kill: HTTP %d", resp.StatusCode)
	}

	// Out-of-range and join-mode kills are client errors.
	resp, _ = http.Post(hs.URL+"/fleet/kill?node=9", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("kill node=9: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestBuildMembersJoin: join mode parses external URLs and never boots
// a local fleet.
func TestBuildMembersJoin(t *testing.T) {
	members, fleet, err := buildMembers(fleetConfig{join: "http://a:1, http://b:2,"}, nil, nil)
	if err != nil {
		t.Fatalf("buildMembers: %v", err)
	}
	if fleet != nil {
		t.Fatal("join mode booted a local fleet")
	}
	if len(members) != 2 || members[0].BaseURL != "http://a:1" || members[1].Name != "node-1" {
		t.Fatalf("members = %+v", members)
	}
	if _, _, err := buildMembers(fleetConfig{join: " , "}, nil, nil); err == nil {
		t.Error("blank join list accepted")
	}
}
