// Command binoptvet runs the repo's domain-specific static checks: the
// nine analyzers in internal/lint/suite — five guarding the numeric
// core (kernel determinism, barrier discipline, unit-suffix safety,
// float equality, lock hygiene) and four guarding the fabric's
// concurrency and lifecycle invariants (context threading, goroutine
// shutdown ties, atomic access discipline, error flow).
//
// Standalone:
//
//	go run ./cmd/binoptvet ./...
//
// As a vet tool (the go command drives it once per compilation unit and
// caches clean results):
//
//	go build -o bin/binoptvet ./cmd/binoptvet
//	go vet -vettool=$(pwd)/bin/binoptvet ./...
//
// Findings are suppressed line-by-line with
// `//binopt:ignore <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"binopt/internal/lint"
	"binopt/internal/lint/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("binoptvet", flag.ExitOnError)
	fs.Usage = usage
	listOnly := fs.Bool("list", false, "list the registered analyzers and exit")
	timed := fs.Bool("time", false, "print per-analyzer wall time to stderr (standalone mode)")
	version := fs.String("V", "", "internal: go command version handshake")
	printFlags := fs.Bool("flags", false, "internal: print the tool's flag schema as JSON")
	fs.Parse(args)

	// The go command's vettool handshake: `-V=full` must echo a line the
	// build cache can key on, `-flags` must describe passable flags.
	if *version != "" {
		return printVersion(*version)
	}
	if *printFlags {
		fmt.Println("[]")
		return 0
	}
	if *listOnly {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()

	// Unit mode: the go command invokes the tool with a single *.cfg
	// argument per compilation unit.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		diags, err := lint.RunUnit(suite.Analyzers, rest[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "binoptvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			return 2
		}
		return 0
	}

	// Standalone mode: patterns resolve through `go list` from the
	// current directory.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, timings, err := lint.RunTimed(suite.Analyzers, ".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "binoptvet: %v\n", err)
		return 1
	}
	if *timed {
		printTimings(timings)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "binoptvet: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// printVersion answers the go command's `-V=full` probe. The line must
// start with "binoptvet version"; hashing our own executable gives the
// build cache an honest key, so edits to the tool invalidate cached vet
// results.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Println("binoptvet version 1")
		return 0
	}
	self, err := os.Executable()
	if err == nil {
		if f, ferr := os.Open(self); ferr == nil {
			h := sha256.New()
			_, err = io.Copy(h, f)
			f.Close()
			if err == nil {
				fmt.Printf("binoptvet version 1 buildID=%x\n", h.Sum(nil)[:16])
				return 0
			}
		}
	}
	fmt.Println("binoptvet version 1 buildID=unknown")
	return 0
}

// printTimings reports per-analyzer wall time, slowest first, so CI
// logs show where the lint budget goes.
func printTimings(timings map[string]time.Duration) {
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(timings))
	for name, d := range timings {
		rows = append(rows, row{name, d})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		return rows[i].name < rows[j].name
	})
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "binoptvet: %-12s %v\n", r.name, r.d.Round(time.Microsecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `binoptvet checks binomial-pricer invariants the compiler cannot:

  kerneldet   kernel bodies stay deterministic (parity probe, §IV)
  barrieruse  work-group kernels barrier between conflicting local accesses
  unitcheck   Joules/Seconds/Hz/Bytes/Watts suffixes are not mixed (Table I)
  floateq     float ==/!= outside tolerance helpers
  locksafe    no mutex held across channel ops or Engine calls
  ctxflow     request paths thread the incoming context, no Background()
  spawncheck  every goroutine in serving code is tied to a shutdown path
  atomicmix   atomically-accessed cells are never read or written plainly
  errdrop     kernel-reachable and joules-accounting errors are not dropped

usage:
  binoptvet [packages]        analyze packages (default ./...)
  binoptvet -list             list analyzers
  binoptvet -time [packages]  also print per-analyzer wall time
  go vet -vettool=binoptvet   run under the go command with caching

suppress a finding with an adjacent comment:
  //binopt:ignore <analyzer> <reason>
`)
}
