// Command binomtab regenerates the paper's tables, figures and
// experiments from the reproduction:
//
//	binomtab -table 1              Table I  (resource usage / Fmax / power)
//	binomtab -table 2              Table II (options/s, RMSE, options/J, nodes/s)
//	binomtab -figure 1|2|3|4       the explanatory figures as ASCII
//	binomtab -experiment saturation|pow|powercap|methods|accelbench|futurework|convergence|mlmc|platforms
//
// Flags -steps, -rmse-options and -rmse-steps scale the measured parts.
package main

import (
	"flag"
	"fmt"
	"os"

	"binopt"
	"binopt/internal/accel"
)

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate table 1 or 2")
		figure      = flag.Int("figure", 0, "render figure 1, 2, 3 or 4")
		experiment  = flag.String("experiment", "", "run experiment: saturation, pow, powercap, methods, accelbench, futurework, convergence, mlmc, platforms")
		steps       = flag.Int("steps", 1024, "tree depth N")
		rmseOptions = flag.Int("rmse-options", 40, "options in the accuracy batch")
		rmseSteps   = flag.Int("rmse-steps", 0, "tree depth for accuracy measurement (0 = -steps)")
		csv         = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()

	if err := run(*table, *figure, *experiment, *steps, *rmseOptions, *rmseSteps, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "binomtab:", err)
		os.Exit(1)
	}
}

func run(table, figure int, experiment string, steps, rmseOptions, rmseSteps int, csv bool) error {
	did := false
	if table == 1 || table == 0 && figure == 0 && experiment == "" {
		res, err := binopt.Table1()
		if err != nil {
			return err
		}
		fmt.Println("TABLE I — RESOURCE USAGE (Stratix IV EP4SGX530)")
		if csv {
			fmt.Println(res.CSV)
		} else {
			fmt.Println(res.Text)
		}
		did = true
	}
	if table == 2 || table == 0 && figure == 0 && experiment == "" {
		res, err := binopt.Table2(binopt.Table2Config{
			Steps: steps, RMSEOptions: rmseOptions, RMSESteps: rmseSteps,
		})
		if err != nil {
			return err
		}
		fmt.Println("TABLE II — PERFORMANCES (modelled throughput, measured RMSE)")
		if csv {
			fmt.Println(res.CSV)
		} else {
			fmt.Println(res.Text)
		}
		did = true
	}
	if table != 0 && table != 1 && table != 2 {
		return fmt.Errorf("unknown table %d", table)
	}

	switch figure {
	case 0:
	case 1:
		s, err := binopt.Figure1(0)
		if err != nil {
			return err
		}
		fmt.Println(s)
		did = true
	case 2:
		fmt.Println(binopt.Figure2())
		did = true
	case 3:
		s, err := binopt.Figure3(0, 0, 0)
		if err != nil {
			return err
		}
		fmt.Println(s)
		did = true
	case 4:
		s, err := binopt.Figure4(0, 1)
		if err != nil {
			return err
		}
		fmt.Println(s)
		did = true
	default:
		return fmt.Errorf("unknown figure %d", figure)
	}

	switch experiment {
	case "":
	case "saturation":
		results, err := binopt.Saturation(nil)
		if err != nil {
			return err
		}
		fmt.Println("SATURATION STUDY (§V-C)")
		for _, r := range results {
			fmt.Println(r.Text)
		}
		did = true
	case "pow":
		res, err := binopt.PowAccuracy(steps, rmseOptions, 0)
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		did = true
	case "methods":
		_, text, err := binopt.MethodComparison(binopt.MethodComparisonConfig{})
		if err != nil {
			return err
		}
		fmt.Println("SOLVER COMPARISON (related work §II, survey [12])")
		fmt.Println(text)
		did = true
	case "accelbench":
		res, err := binopt.AcceleratorBenchmark(binopt.Table2Config{
			Steps: steps, RMSEOptions: rmseOptions, RMSESteps: rmseSteps,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		did = true
	case "mlmc":
		res, err := binopt.MLMCStudy(0)
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		did = true
	case "convergence":
		res, err := binopt.Convergence(nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		did = true
	case "futurework":
		res, err := binopt.FutureWork(steps)
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		did = true
	case "powercap":
		res, err := binopt.Table1()
		if err != nil {
			return err
		}
		fpga, err := accel.Get("fpga-ivb")
		if err != nil {
			return err
		}
		capped, err := res.KernelIVB.CapPower(fpga.Describe().Board.Chip, 10)
		if err != nil {
			return err
		}
		fmt.Println("POWER CAP TO THE 10 W BUDGET (§V-C workaround)")
		fmt.Printf("full speed: %.2f MHz at %.1f W\n", res.KernelIVB.FmaxMHz, res.KernelIVB.PowerWatts)
		fmt.Printf("derated:    %.2f MHz at %.1f W\n", capped.FmaxMHz, capped.PowerWatts)
		did = true
	case "platforms":
		fmt.Println("REGISTERED ACCELERATOR PLATFORMS (internal/accel registry)")
		for _, p := range accel.Platforms() {
			d := p.Describe()
			est, err := p.Estimate(steps, accel.Options{})
			if err != nil {
				return err
			}
			fmt.Printf("%-18s %-9s %-24s kernel %-9s %10.0f options/s  %5.1f W  %8.1f options/J\n",
				d.Name, d.Kind, d.Device, d.DefaultKernel, est.OptionsPerSec, est.PowerWatts, est.OptionsPerJoule)
		}
		did = true
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}

	if !did {
		return fmt.Errorf("nothing to do")
	}
	return nil
}
