package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), ferr
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run(1, 0, "", 1024, 8, 128, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "Logic utilization") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunTable2(t *testing.T) {
	out, err := capture(t, func() error { return run(2, 0, "", 1024, 8, 128, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TABLE II") || !strings.Contains(out, "options/J") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunFigures(t *testing.T) {
	for fig, want := range map[int]string{
		1: "Binomial tree",
		2: "OpenCL platform",
		3: "ping-pong",
		4: "barrier",
	} {
		out, err := capture(t, func() error { return run(0, fig, "", 1024, 8, 128, false) })
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("figure %d missing %q", fig, want)
		}
	}
}

func TestRunExperiments(t *testing.T) {
	for exp, want := range map[string]string{
		"saturation": "SATURATION",
		"pow":        "Power-operator",
		"powercap":   "POWER CAP",
		"futurework": "Future-work",
		"platforms":  "embedded-keystone",
	} {
		out, err := capture(t, func() error { return run(0, 0, exp, 256, 8, 128, false) })
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s missing %q in output", exp, want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run(3, 0, "", 1024, 8, 128, false) }); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := capture(t, func() error { return run(1, 9, "", 1024, 8, 128, false) }); err == nil {
		t.Error("unknown figure should fail")
	}
	if _, err := capture(t, func() error { return run(1, 0, "nosuch", 1024, 8, 128, false) }); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error { return run(1, 0, "", 1024, 8, 128, true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Logic utilization,") {
		t.Errorf("CSV output missing comma-separated rows:\n%s", out)
	}
}
