package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"binopt/internal/scenario"
	"binopt/internal/serve"
	"binopt/internal/workload"
)

// runScenarios is loadgen's stress-testing mode: build a deterministic
// book from the head of the paper's volatility-curve chain, expand a
// spot×vol×rate grid to at least nScen shocks, and POST the identical
// /v1/scenarios request to every endpoint. The run is a verdict, not a
// benchmark: all endpoints must answer bit-identically (a fleet router
// and a solo node given as two targets prove the sharded fabric is
// numerically invisible), the book must show a nonzero VaR, and the
// evaluation count must cover the whole grid. Any miss exits nonzero.
func runScenarios(ctx context.Context, endpoints []string, nScen, positions int, seed int64) error {
	if positions < 2 {
		return fmt.Errorf("scenario book needs at least 2 positions, got %d", positions)
	}
	req, total, err := scenarioRequest(nScen, positions, seed)
	if err != nil {
		return err
	}
	fmt.Printf("scenarios: %d-position book (seed %d), %d-scenario grid, steps per server config\n",
		positions, seed, total)

	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	var baseline *serve.ScenarioResponse
	for _, ep := range endpoints {
		resp, elapsed, err := postScenarioRequest(ctx, ep, body)
		if err != nil {
			return fmt.Errorf("%s: %w", ep, err)
		}
		fmt.Printf("scenarios: %-40s base %.6f  evals %d  joules %.4g  %.1fms  backend=%s\n",
			ep, resp.BaseValue, resp.Evaluations, resp.ModelledJoules,
			float64(elapsed.Microseconds())/1000, resp.Backend)
		if len(resp.Scenarios) != total {
			return fmt.Errorf("%s: %d scenarios answered, want %d", ep, len(resp.Scenarios), total)
		}
		if baseline == nil {
			r := resp
			baseline = &r
			continue
		}
		if err := scenarioDiff(*baseline, resp); err != nil {
			return fmt.Errorf("bit-equality verdict: %s vs %s: %w", endpoints[0], ep, err)
		}
	}

	// The distribution verdict: a shocked book that reports zero VaR at
	// every quantile means the grid never moved the book — a broken
	// revaluation path, not a calm market.
	var nonzeroVaR bool
	for _, rm := range baseline.Risk {
		fmt.Printf("scenarios: VaR(%.2f) %.6f  ES %.6f\n", rm.Confidence, rm.VaR, rm.ES)
		if rm.VaR != 0 {
			nonzeroVaR = true
		}
	}
	if !nonzeroVaR {
		return fmt.Errorf("scenario verdict: VaR is zero at every quantile — shocks did not move the book")
	}
	// Every scenario revalues the whole book at least once; anything
	// less means positions were silently dropped.
	if min := int64(total) * int64(positions); baseline.Evaluations < min {
		return fmt.Errorf("scenario verdict: %d evaluations < %d scenario×position floor", baseline.Evaluations, min)
	}
	if len(endpoints) > 1 {
		fmt.Printf("scenario verdict: pass — %d endpoints bit-identical over %d scenarios, VaR nonzero\n",
			len(endpoints), total)
	} else {
		fmt.Printf("scenario verdict: pass — %d scenarios revalued, VaR nonzero\n", total)
	}
	return nil
}

// scenarioRequest builds the deterministic request every endpoint
// receives: the first `positions` options of the seeded chain with a
// fixed quantity cycle (longs and shorts), under a grid sized to reach
// at least nScen shocks — rate and vol axes are fixed small, the spot
// axis stretches to cover the request.
func scenarioRequest(nScen, positions int, seed int64) (serve.ScenarioRequest, int, error) {
	spec := workload.DefaultVolCurveSpec(seed)
	spec.N = positions
	chain, err := workload.Chain(spec)
	if err != nil {
		return serve.ScenarioRequest{}, 0, err
	}
	book := make([]serve.ScenarioPosition, len(chain))
	for i, o := range chain {
		qty := float64(1 + i%5)
		if i%3 == 2 {
			qty = -qty
		}
		book[i] = serve.ScenarioPosition{Contract: serve.FromOption(o), Quantity: qty}
	}

	const volN, rateN = 10, 5
	spotN := (nScen + volN*rateN - 1) / (volN * rateN)
	if spotN < 2 {
		spotN = 2
	}
	grid := &scenario.GridSpec{
		Spot: scenario.Axis{From: 0.7, To: 1.3, N: spotN},
		Vol:  scenario.Axis{From: 0.8, To: 1.5, N: volN},
		Rate: scenario.Axis{From: -0.02, To: 0.02, N: rateN},
	}
	return serve.ScenarioRequest{
		Portfolio: book,
		Grid:      grid,
		Quantiles: []float64{0.9, 0.95, 0.99},
	}, spotN * volN * rateN, nil
}

func postScenarioRequest(ctx context.Context, base string, body []byte) (serve.ScenarioResponse, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		return serve.ScenarioResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return serve.ScenarioResponse{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	elapsed := time.Since(start)
	if err != nil {
		return serve.ScenarioResponse{}, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.ScenarioResponse{}, 0, fmt.Errorf("POST /v1/scenarios: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out serve.ScenarioResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return serve.ScenarioResponse{}, 0, err
	}
	return out, elapsed, nil
}

// scenarioDiff compares two endpoints' answers bit for bit on every
// field the distribution owns. Evaluations, joules, cache and backend
// labels legitimately differ between a solo node and a fleet (each
// shard reprices the base book) and are excluded.
func scenarioDiff(a, b serve.ScenarioResponse) error {
	if math.Float64bits(a.BaseValue) != math.Float64bits(b.BaseValue) {
		return fmt.Errorf("base value differs: %x vs %x", a.BaseValue, b.BaseValue)
	}
	if a.HasGreeks != b.HasGreeks {
		return fmt.Errorf("has_greeks differs: %t vs %t", a.HasGreeks, b.HasGreeks)
	}
	if a.HasGreeks && *a.Greeks != *b.Greeks {
		return fmt.Errorf("greeks differ: %+v vs %+v", *a.Greeks, *b.Greeks)
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		return fmt.Errorf("scenario count differs: %d vs %d", len(a.Scenarios), len(b.Scenarios))
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			return fmt.Errorf("scenario %d differs: %+v vs %+v", i, a.Scenarios[i], b.Scenarios[i])
		}
	}
	if len(a.Risk) != len(b.Risk) {
		return fmt.Errorf("risk count differs: %d vs %d", len(a.Risk), len(b.Risk))
	}
	for i := range a.Risk {
		if a.Risk[i] != b.Risk[i] {
			return fmt.Errorf("risk %d differs: %+v vs %+v", i, a.Risk[i], b.Risk[i])
		}
	}
	return nil
}
