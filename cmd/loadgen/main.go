// Command loadgen drives a pricesrvd instance with the paper's workload —
// the 2000-American-put volatility-curve chain — at configurable
// concurrency and request rate, and reports sustained throughput, latency
// quantiles and the server's modelled energy bill. It is the measurement
// half of the serving tier: the paper's 2000 options/s target becomes a
// number this tool either prints or doesn't.
//
//	pricesrvd -addr :8080 -steps 1024 &
//	loadgen -addr http://127.0.0.1:8080 -n 2000 -warmup 1 -passes 5
//
// Against a fleet there are two modes. -targets round-robins requests
// across the member nodes directly (client-side spreading, per-target
// breakdown in the report); -via-router sends everything through one
// cluster router entrypoint, measuring the fabric's own ring placement:
//
//	pricefleet -nodes 3 -addr :9090 &
//	loadgen -targets http://n0:8080,http://n1:8080,http://n2:8080
//	loadgen -via-router http://127.0.0.1:9090
//
// With -chaos the run becomes a fault-tolerance verdict: the report
// gains client-visible error and server-side retry rates, and the exit
// code is nonzero if any error reached a client — pair it with a
// pricesrvd started under -faults.
//
// With -slo the run becomes an SLO verdict too: after the measured
// passes loadgen fetches the target's /debug/slo burn-rate report and
// exits nonzero if either objective (latency, availability) is burning
// its error budget on both alert windows. The report also reconciles
// the per-request Server-Timing joules ledger against the server's
// modelled energy total.
//
// With -scenarios N the tool switches to the stress-testing endpoint:
// a deterministic book (default 24 positions, -book) is revalued under
// a spot×vol×rate grid of at least N shocks via POST /v1/scenarios,
// and the run passes only if every endpoint answers bit-identically
// with a nonzero VaR. Giving a solo node and a fleet router as two
// -targets turns it into the fabric's numerical-equivalence verdict:
//
//	loadgen -scenarios 1000 -targets http://solo:8080,http://router:9090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"binopt/internal/serve"
	"binopt/internal/slo"
	"binopt/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the pricing server")
		targets     = flag.String("targets", "", "comma-separated node base URLs; requests round-robin across them and the report breaks down per target (overrides -addr)")
		viaRouter   = flag.String("via-router", "", "base URL of a cluster router; all requests go through this one entrypoint (overrides -addr and -targets)")
		n           = flag.Int("n", 2000, "options per volatility-curve pass (the paper's chain size)")
		seed        = flag.Int64("seed", 7, "chain generation seed")
		concurrency = flag.Int("concurrency", 4, "in-flight requests")
		batch       = flag.Int("batch", 250, "contracts per request")
		warmup      = flag.Int("warmup", 1, "unmeasured warmup passes (cold pricing, cache fill)")
		passes      = flag.Int("passes", 5, "measured passes over the chain")
		rps         = flag.Float64("rps", 0, "request-rate limit during measurement (0 = unlimited)")
		target      = flag.Float64("target", 2000, "options/s target to check the run against (0 = skip)")
		chaos       = flag.Bool("chaos", false, "chaos verdict: report error/retry rates and exit nonzero on any client-visible error (pair with pricesrvd -faults)")
		sloVerdict  = flag.Bool("slo", false, "SLO verdict: fetch the target's /debug/slo after the run and exit nonzero if any objective is burning its error budget")
		scenarios   = flag.Int("scenarios", 0, "scenario verdict: skip the load run; revalue a deterministic book under at least this many shocks via /v1/scenarios on every endpoint and require bit-identical answers and nonzero VaR")
		book        = flag.Int("book", 24, "positions in the scenario-mode book (with -scenarios)")
	)
	flag.Parse()

	// -via-router wins over -targets wins over -addr: one entrypoint,
	// client-side spreading, single node — in that order of preference.
	var targetList []string
	base := *addr
	switch {
	case *viaRouter != "":
		base = *viaRouter
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
	}

	if *scenarios > 0 {
		// Scenario mode replaces the load run. Every endpoint — the
		// single -addr/-via-router base, or each -targets member — gets
		// the identical request and must answer it bit-identically;
		// point it at a solo node plus a fleet router to prove the
		// sharded revaluation is numerically invisible.
		endpoints := targetList
		if len(endpoints) == 0 {
			endpoints = []string{base}
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		if err := runScenarios(ctx, endpoints, *scenarios, *book, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(base, targetList, *n, *seed, *concurrency, *batch, *warmup, *passes, *rps, *target, *chaos, *sloVerdict); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(addr string, targets []string, n int, seed int64, concurrency, batch, warmup, passes int, rps, target float64, chaos, sloVerdict bool) error {
	spec := workload.DefaultVolCurveSpec(seed)
	spec.N = n
	chain, err := workload.Chain(spec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch {
	case len(targets) > 0:
		fmt.Printf("loadgen: %d-put chain (seed %d), %d warmup + %d measured passes, batch %d, concurrency %d, %d targets round-robin\n",
			n, seed, warmup, passes, batch, concurrency, len(targets))
	default:
		fmt.Printf("loadgen: %d-put chain (seed %d), %d warmup + %d measured passes, batch %d, concurrency %d\n",
			n, seed, warmup, passes, batch, concurrency)
	}
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL:      addr,
		Targets:      targets,
		Options:      chain,
		Concurrency:  concurrency,
		BatchSize:    batch,
		WarmupPasses: warmup,
		Passes:       passes,
		RPS:          rps,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Text())
	if chaos {
		// The chaos verdict: a fault-tolerant pool absorbs injected shard
		// faults server-side (retries > 0 is the proof faults fired), and
		// no error ever reaches a client.
		reqs := rep.Requests
		if reqs == 0 {
			reqs = 1
		}
		fmt.Printf("chaos:    %d client-visible errors / %d requests (%.2f%%), %d server-side retries (%.3f per option)\n",
			rep.Errors, rep.Requests, 100*float64(rep.Errors)/float64(reqs),
			rep.Retries, float64(rep.Retries)/float64(maxI64(rep.Options, 1)))
		if rep.Errors > 0 {
			return fmt.Errorf("chaos verdict: %d client-visible errors — failover did not absorb the faults", rep.Errors)
		}
		fmt.Println("chaos verdict: pass — every fault absorbed server-side")
	}
	if target > 0 {
		if rep.OptionsPerSec >= target {
			fmt.Printf("target met: %.0f options/s sustained >= %.0f (paper §I use-case budget)\n", rep.OptionsPerSec, target)
		} else {
			fmt.Printf("target missed: %.0f options/s sustained < %.0f\n", rep.OptionsPerSec, target)
		}
	}
	if sloVerdict {
		if err := checkSLO(addr); err != nil {
			return err
		}
	}
	return nil
}

// checkSLO turns the run into an SLO verdict: fetch the target's
// burn-rate report after the measured passes and fail if any objective
// is burning on both windows. The report reflects everything the server
// observed during the run — the loadgen's own traffic is the load that
// either burned the budget or didn't.
func checkSLO(base string) error {
	resp, err := http.Get(base + "/debug/slo")
	if err != nil {
		return fmt.Errorf("slo verdict: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("slo verdict: GET /debug/slo: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var rep slo.Report
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rep); err != nil {
		return fmt.Errorf("slo verdict: decode /debug/slo: %w", err)
	}
	fmt.Printf("slo:      %d requests observed, burn threshold %.0f, windows %gs/%gs\n",
		rep.Requests, rep.BurnThreshold, rep.FastWindowSec, rep.SlowWindowSec)
	for _, o := range rep.Objectives {
		state := "ok"
		if o.Burning {
			state = "BURNING"
		}
		fmt.Printf("slo:      %-12s target %.4g  burn fast %.3g / slow %.3g  %s\n",
			o.Name, o.Target, o.FastBurn, o.SlowBurn, state)
	}
	if len(rep.Objectives) == 0 {
		fmt.Println("slo:      monitor disabled on the server (no objectives reported)")
	}
	if !rep.Healthy {
		return fmt.Errorf("slo verdict: error budget burning — the server's burn-rate monitor alerted during the run")
	}
	fmt.Println("slo verdict: pass — no objective burning")
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
