package binopt

import (
	"strings"
	"testing"
)

func TestFutureWork(t *testing.T) {
	res, err := FutureWork(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 7 {
		t.Fatalf("got %d estimates", len(res.Estimates))
	}
	byPlatform := map[string]bool{}
	for _, e := range res.Estimates {
		byPlatform[e.Platform] = true
		if e.OptionsPerSec <= 0 || e.OptionsPerJoule <= 0 {
			t.Errorf("%s: degenerate estimate %+v", e.Platform, e)
		}
	}
	for _, want := range []string{"TI KeyStone C6678", "ARM Mali-T604", "EP4SGX530"} {
		if !byPlatform[want] {
			t.Errorf("missing platform %q", want)
		}
	}
	// The structural findings: embedded parts fit the 10 W budget but
	// miss 2000 options/s in double precision, and every embedded
	// double-precision build is more energy-efficient than the Xeon.
	var xeonJ float64
	for _, e := range res.Estimates {
		if strings.Contains(e.Platform, "Xeon") {
			xeonJ = e.OptionsPerJoule
		}
	}
	for _, e := range res.Estimates {
		embedded := strings.Contains(e.Platform, "KeyStone") || strings.Contains(e.Platform, "Mali")
		if !embedded {
			continue
		}
		if e.PowerWatts > 10 {
			t.Errorf("%s exceeds the 10 W budget", e.Platform)
		}
		if e.Precision == "double" && e.OptionsPerSec >= 2000 {
			t.Errorf("%s double at %.0f options/s: model expected a miss", e.Platform, e.OptionsPerSec)
		}
		if e.OptionsPerJoule <= xeonJ {
			t.Errorf("%s (%s) less efficient than the Xeon", e.Platform, e.Precision)
		}
	}
	if !strings.Contains(res.Text, "Future-work") || !strings.Contains(res.Text, "meets 10 W") {
		t.Errorf("text:\n%s", res.Text)
	}
}

func TestFutureWorkDefaultSteps(t *testing.T) {
	res, err := FutureWork(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "N=1024") {
		t.Error("default steps should be 1024")
	}
}
