#!/usr/bin/env bash
# trace_smoke.sh — boot pricesrvd with tracing on, drive real load
# through loadgen, then assert the observability surface is intact:
# /debug/trace must serve well-formed Chrome trace-event JSON containing
# all four host phases plus modelled device events, and /metrics must
# expose the per-phase histograms, the per-request joules histogram and
# the windowed throughput gauge.
#
# Run from the repository root:  ./scripts/trace_smoke.sh
set -euo pipefail

ADDR=127.0.0.1:18080
BASE=http://$ADDR
LOG=$(mktemp)
SRV_PID=

cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
}
trap cleanup EXIT

fail() {
    echo "trace_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

echo "trace_smoke: building"
go build -o /tmp/pricesrvd-smoke ./cmd/pricesrvd
go build -o /tmp/loadgen-smoke ./cmd/loadgen

echo "trace_smoke: starting pricesrvd on $ADDR"
/tmp/pricesrvd-smoke -addr "$ADDR" -steps 256 >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 50 ] && fail "server did not become healthy"
    sleep 0.2
done

echo "trace_smoke: driving load"
/tmp/loadgen-smoke -addr "$BASE" -n 200 -warmup 0 -passes 2 -target 0

TRACE=$(mktemp)
METRICS=$(mktemp)
trap 'cleanup; rm -f "$TRACE" "$METRICS"' EXIT
curl -sf "$BASE/debug/trace" -o "$TRACE" || fail "GET /debug/trace"
curl -sf "$BASE/metrics" -o "$METRICS" || fail "GET /metrics"

echo "trace_smoke: validating trace JSON"
python3 -m json.tool "$TRACE" >/dev/null || fail "/debug/trace is not valid JSON"
for span in '"batch"' '"queue"' '"compute"' '"readback"' 'POST /v1/price' \
    'ndrange IV.B' '"clock":"wall"' '"clock":"device"' displayTimeUnit; do
    grep -q -- "$span" "$TRACE" || fail "trace missing $span"
done

echo "trace_smoke: validating metrics"
for metric in 'binopt_phase_seconds_bucket{phase="batch"' \
    'binopt_phase_seconds_bucket{phase="queue"' \
    'binopt_phase_seconds_bucket{phase="compute"' \
    'binopt_phase_seconds_bucket{phase="readback"' \
    'binopt_phase_seconds_count{phase="compute"' \
    binopt_request_joules_bucket \
    binopt_option_latency_seconds_bucket \
    binopt_options_per_sec_window \
    binopt_backend_modelled_device_seconds_total \
    binopt_trace_spans_total; do
    grep -q -- "$metric" "$METRICS" || fail "metrics missing $metric"
done

kill "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
grep -q "drained cleanly" "$LOG" || fail "server did not drain cleanly"

echo "trace_smoke: PASS"
