#!/usr/bin/env bash
# scenario_smoke.sh — boot pricefleet's 2-node in-process fabric plus a
# solo pricesrvd and prove the stress-testing tier's claims on the real
# binaries:
#
#   1. A 24-position book revalued under a 1000-scenario spot×vol×rate
#      grid answers bit-identically through the sharded fleet router
#      and the solo node (loadgen -scenarios is the verdict: it exits
#      nonzero on any bit mismatch or an all-zero VaR).
#   2. The work shows up on the ledgers: both servers book scenario
#      requests, shocks, evaluations and modelled joules on /metrics,
#      and the router's scenario sharding counters move.
#   3. The burn-rate monitor stays healthy under the stress run and
#      both processes still drain cleanly on SIGTERM.
#
# Run from the repository root:  ./scripts/scenario_smoke.sh
set -euo pipefail

FLEET_ADDR=127.0.0.1:19290
FLEET=http://$FLEET_ADDR
SOLO_ADDR=127.0.0.1:19291
SOLO=http://$SOLO_ADDR
STEPS=128
SCENARIOS=1000
FLEET_LOG=$(mktemp)
SOLO_LOG=$(mktemp)
FLEET_PID=
SOLO_PID=

cleanup() {
    for pid in "$FLEET_PID" "$SOLO_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -f "$FLEET_LOG" "$SOLO_LOG" /tmp/scenario_loadgen.out
}
trap cleanup EXIT

fail() {
    echo "scenario_smoke: FAIL: $*" >&2
    echo "--- fleet log ---" >&2
    cat "$FLEET_LOG" >&2
    echo "--- solo log ---" >&2
    cat "$SOLO_LOG" >&2
    exit 1
}

wait_healthy() {
    for i in $(seq 1 50); do
        if curl -sf "$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    fail "$1 did not become healthy"
}

echo "scenario_smoke: building"
go build -o /tmp/pricefleet-scen ./cmd/pricefleet
go build -o /tmp/pricesrvd-scen ./cmd/pricesrvd
go build -o /tmp/loadgen-scen ./cmd/loadgen

echo "scenario_smoke: starting 2-node fleet on $FLEET_ADDR and a solo node on $SOLO_ADDR"
/tmp/pricefleet-scen -addr "$FLEET_ADDR" -nodes 2 -steps "$STEPS" \
    -heartbeat 50ms >"$FLEET_LOG" 2>&1 &
FLEET_PID=$!
/tmp/pricesrvd-scen -addr "$SOLO_ADDR" -steps "$STEPS" >"$SOLO_LOG" 2>&1 &
SOLO_PID=$!
wait_healthy "$FLEET"
wait_healthy "$SOLO"

echo "scenario_smoke: $SCENARIOS-scenario revaluation, solo vs fleet bit-equality verdict"
# loadgen posts the identical request to both endpoints and exits
# nonzero unless every per-scenario value, the base value, the Greeks
# and the VaR/ES quantiles are bit-identical — and unless VaR is
# nonzero somewhere (a zero VaR under a ±30% spot grid means the
# revaluation path is broken, not that the market is calm).
if ! /tmp/loadgen-scen -scenarios "$SCENARIOS" -book 24 \
    -targets "$SOLO,$FLEET" >/tmp/scenario_loadgen.out 2>&1; then
    cat /tmp/scenario_loadgen.out >&2
    fail "loadgen scenario verdict"
fi
cat /tmp/scenario_loadgen.out

echo "scenario_smoke: scenario ledgers on /metrics"
curl -sf "$SOLO/metrics" | grep -q 'binopt_scenario_requests_total 1' \
    || fail "solo metrics missing scenario request count"
SOLO_EVALS=$(curl -sf "$SOLO/metrics" | awk '/^binopt_scenario_evaluations_total /{print $2}')
[ -n "$SOLO_EVALS" ] && [ "$SOLO_EVALS" -ge $((SCENARIOS * 24)) ] \
    || fail "solo scenario evaluations $SOLO_EVALS below the ${SCENARIOS}x24 floor"
curl -sf "$SOLO/metrics" | grep -q 'binopt_scenario_modelled_joules_total' \
    || fail "solo metrics missing scenario joules ledger"
curl -sf "$FLEET/metrics" | grep -q 'binopt_router_scenario_requests_total 1' \
    || fail "router metrics missing scenario request count"
SHARDS=$(curl -sf "$FLEET/metrics" | awk '/^binopt_router_scenario_shards_total /{print $2}')
[ -n "$SHARDS" ] && [ "$SHARDS" -ge 2 ] \
    || fail "router forwarded $SHARDS scenario shards — the axis did not shard across 2 nodes"

echo "scenario_smoke: burn-rate monitor healthy under the stress run"
curl -sf "$SOLO/debug/slo" | grep -q '"healthy":true' \
    || fail "solo /debug/slo unhealthy after the run"
curl -sf "$FLEET/debug/slo" | grep -q '"healthy":true' \
    || fail "fleet /debug/slo unhealthy after the run"

echo "scenario_smoke: drain check"
kill "$FLEET_PID"
wait "$FLEET_PID" 2>/dev/null || true
FLEET_PID=
grep -q "drained cleanly" "$FLEET_LOG" || fail "fleet did not drain cleanly"
kill "$SOLO_PID"
wait "$SOLO_PID" 2>/dev/null || true
SOLO_PID=
grep -q "drained cleanly" "$SOLO_LOG" || fail "solo did not drain cleanly"

echo "scenario_smoke: PASS"
