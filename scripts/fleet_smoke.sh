#!/usr/bin/env bash
# fleet_smoke.sh — boot pricefleet with a 3-node in-process fleet, prove
# the fabric's two load-bearing claims on the real binaries:
#
#   1. Bit-identical distribution: the same chain priced through the
#      router and through a single pricesrvd yields byte-identical
#      price vectors — hashing, sub-batching and merging are
#      numerically invisible.
#   2. Chaos: kill one node mid-run (listener and connections torn
#      down, no drain) and loadgen's chaos verdict must stay at zero
#      client-visible errors, with the fleet /metrics showing the node
#      down and its ring segment failed over.
#
# Run from the repository root:  ./scripts/fleet_smoke.sh
set -euo pipefail

FLEET_ADDR=127.0.0.1:19090
FLEET=http://$FLEET_ADDR
SOLO_ADDR=127.0.0.1:19091
SOLO=http://$SOLO_ADDR
STEPS=256
FLEET_LOG=$(mktemp)
SOLO_LOG=$(mktemp)
FLEET_PID=
SOLO_PID=

cleanup() {
    for pid in "$FLEET_PID" "$SOLO_PID"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -f "$FLEET_LOG" "$SOLO_LOG" /tmp/fleet_prices.json /tmp/solo_prices.json
}
trap cleanup EXIT

fail() {
    echo "fleet_smoke: FAIL: $*" >&2
    echo "--- fleet log ---" >&2
    cat "$FLEET_LOG" >&2
    exit 1
}

wait_healthy() {
    for i in $(seq 1 50); do
        if curl -sf "$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    fail "$1 did not become healthy"
}

echo "fleet_smoke: building"
go build -o /tmp/pricefleet-smoke ./cmd/pricefleet
go build -o /tmp/pricesrvd-smoke ./cmd/pricesrvd
go build -o /tmp/loadgen-smoke ./cmd/loadgen

echo "fleet_smoke: starting 3-node fleet on $FLEET_ADDR and a solo node on $SOLO_ADDR"
/tmp/pricefleet-smoke -addr "$FLEET_ADDR" -nodes 3 -steps "$STEPS" \
    -heartbeat 50ms >"$FLEET_LOG" 2>&1 &
FLEET_PID=$!
/tmp/pricesrvd-smoke -addr "$SOLO_ADDR" -steps "$STEPS" >"$SOLO_LOG" 2>&1 &
SOLO_PID=$!
wait_healthy "$FLEET"
wait_healthy "$SOLO"

echo "fleet_smoke: bit-identical check (fleet vs solo, one batch)"
BODY='{"contracts":[
 {"right":"put","style":"american","spot":100,"strike":80,"rate":0.03,"sigma":0.25,"t":0.5},
 {"right":"put","style":"american","spot":100,"strike":90,"rate":0.03,"sigma":0.22,"t":0.5},
 {"right":"put","style":"american","spot":100,"strike":100,"rate":0.03,"sigma":0.20,"t":0.5},
 {"right":"put","style":"american","spot":100,"strike":110,"rate":0.03,"sigma":0.21,"t":0.5},
 {"right":"call","style":"european","spot":100,"strike":105,"rate":0.03,"sigma":0.2,"t":1.0},
 {"right":"call","style":"american","spot":100,"strike":95,"rate":0.03,"sigma":0.3,"t":0.25}
]}'
curl -sf "$FLEET/v1/price" -d "$BODY" -o /tmp/fleet_prices.json || fail "fleet price request"
curl -sf "$SOLO/v1/price" -d "$BODY" -o /tmp/solo_prices.json || fail "solo price request"
python3 - /tmp/fleet_prices.json /tmp/solo_prices.json <<'EOF' || fail "fleet and solo prices differ"
import json, sys
fleet = json.load(open(sys.argv[1]))
solo = json.load(open(sys.argv[2]))
fp = [r["price"] for r in fleet["results"]]
sp = [r["price"] for r in solo["results"]]
assert len(fp) == len(sp) > 0, f"result counts differ: {len(fp)} vs {len(sp)}"
for i, (a, b) in enumerate(zip(fp, sp)):
    assert a == b, f"option {i}: fleet {a!r} != solo {b!r}"
print(f"fleet_smoke: {len(fp)} prices bit-identical across the fabric")
EOF

echo "fleet_smoke: fleet metrics sanity"
curl -sf "$FLEET/metrics" | grep -q 'binopt_fleet_nodes 3' \
    || fail "fleet metrics missing binopt_fleet_nodes 3"
curl -sf "$FLEET/metrics" | grep -q 'binopt_fleet_joules_per_option' \
    || fail "fleet metrics missing joules per option"

echo "fleet_smoke: chaos — loadgen through the router, killing node 1 mid-run"
# Start the measured run in the background, yank a node while it is in
# flight, then collect loadgen's chaos verdict: it exits nonzero if any
# request failed. The -rps throttle stretches the measured phase to
# ~4s so the kill at t=1s provably lands mid-run, not after the fact.
/tmp/loadgen-smoke -via-router "$FLEET" -n 500 -warmup 1 -passes 40 -rps 20 \
    -concurrency 4 -target 0 -chaos >/tmp/fleet_loadgen.out 2>&1 &
LG_PID=$!
sleep 1
curl -sf -X POST "$FLEET/fleet/kill?node=1" >/dev/null || fail "kill endpoint"
if ! wait "$LG_PID"; then
    cat /tmp/fleet_loadgen.out >&2
    fail "loadgen chaos verdict: client-visible errors while a node died"
fi
cat /tmp/fleet_loadgen.out

echo "fleet_smoke: validating the outage is observable on the fleet"
sleep 0.3  # one heartbeat round so the router books the corpse
curl -sf "$FLEET/metrics" | grep -q 'binopt_node_up{node="node-1"} 0' \
    || fail "metrics: killed node still marked up"
curl -sf "$FLEET/metrics" | grep -q 'binopt_fleet_nodes_scraped 2' \
    || fail "metrics: scrape count did not drop to 2"
curl -sf "$FLEET/healthz" | grep -q '"status":"degraded"' \
    || fail "healthz not degraded after node kill"

kill "$FLEET_PID"
wait "$FLEET_PID" 2>/dev/null || true
FLEET_PID=
grep -q "drained cleanly" "$FLEET_LOG" || fail "fleet did not drain cleanly"

echo "fleet_smoke: PASS"
