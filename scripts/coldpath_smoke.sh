#!/usr/bin/env bash
# coldpath_smoke.sh — guard the lattice cold path against silent
# regression: run BenchmarkPriceAmericanPut1024 (the scalar per-miss
# cost every cache miss pays at the paper's 1024-step depth) a few
# times and fail if the best run is more than 25% slower than the
# committed BENCH_serve.json baseline. Benchmark noise on shared CI
# boxes is real, hence best-of-N against a generous threshold: this
# gate catches an accidentally quadratic sweep or a lost optimisation,
# not single-digit drift. PRs that intentionally move the cold path
# must append a fresh BENCH_serve.json entry (which rebases this gate).
#
# Run from the repository root:  ./scripts/coldpath_smoke.sh
set -euo pipefail

BENCH=BenchmarkPriceAmericanPut1024
COUNT=3
MAX_REGRESSION_PCT=25

fail() {
    echo "coldpath_smoke: FAIL: $*" >&2
    exit 1
}

# Baseline: the ns_per_op of the LATEST entry naming the benchmark in
# BENCH_serve.json (entries are append-only, so last wins).
baseline=$(awk '
    /"name": "'"$BENCH"'"/ { armed = 1; next }
    armed && /"ns_per_op"/ { gsub(/[^0-9]/, ""); latest = $0; armed = 0 }
    END { print latest }
' BENCH_serve.json)
[ -n "$baseline" ] || fail "no $BENCH baseline found in BENCH_serve.json"

echo "coldpath_smoke: baseline $BENCH = ${baseline} ns/op"
echo "coldpath_smoke: running $BENCH (count=$COUNT)"
out=$(go test ./internal/serve/ -run '^$' -bench "^${BENCH}\$" -benchtime 1s -count "$COUNT")
echo "$out"

best=$(echo "$out" | awk -v bench="$BENCH" '
    $1 == bench { gsub(/[^0-9]/, "", $3); if (best == "" || $3 + 0 < best + 0) best = $3 }
    END { print best }
')
[ -n "$best" ] || fail "benchmark produced no samples"

limit=$((baseline + baseline * MAX_REGRESSION_PCT / 100))
echo "coldpath_smoke: best ${best} ns/op, limit ${limit} ns/op (baseline + ${MAX_REGRESSION_PCT}%)"
if [ "$best" -gt "$limit" ]; then
    fail "cold path regressed: best ${best} ns/op > ${limit} ns/op (baseline ${baseline} + ${MAX_REGRESSION_PCT}%)"
fi
echo "coldpath_smoke: PASS"
