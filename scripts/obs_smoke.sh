#!/usr/bin/env bash
# obs_smoke.sh — the fleet observability contract on the real binaries.
# Boot pricefleet's 2-node in-process fabric with tracing and the SLO
# monitor on, push load through the router with loadgen, then hold:
#
#   1. Distributed tracing: the router's merged /debug/trace carries
#      router spans AND both nodes' spans stitched under one W3C trace
#      ID, each node in its own process lane.
#   2. Energy ledger: loadgen's report reconciles the per-request
#      Server-Timing joules ledger ("ledger:" line), and the nodes
#      expose the per-request joules histogram.
#   3. Exemplars: a node's /metrics histogram buckets carry
#      `# {trace_id="..."}` exemplars linking metrics to traces.
#   4. SLO: /debug/slo on the router reports healthy after a clean run,
#      and loadgen's -slo verdict passes.
#
# Run from the repository root:  ./scripts/obs_smoke.sh
set -euo pipefail

FLEET_ADDR=127.0.0.1:19190
FLEET=http://$FLEET_ADDR
STEPS=256
FLEET_LOG=$(mktemp)
LG_OUT=$(mktemp)
TRACE=$(mktemp)
FLEET_PID=

cleanup() {
    if [ -n "$FLEET_PID" ] && kill -0 "$FLEET_PID" 2>/dev/null; then
        kill "$FLEET_PID" 2>/dev/null || true
        wait "$FLEET_PID" 2>/dev/null || true
    fi
    rm -f "$FLEET_LOG" "$LG_OUT" "$TRACE"
}
trap cleanup EXIT

fail() {
    echo "obs_smoke: FAIL: $*" >&2
    echo "--- fleet log ---" >&2
    cat "$FLEET_LOG" >&2
    exit 1
}

echo "obs_smoke: building"
go build -o /tmp/pricefleet-obs ./cmd/pricefleet
go build -o /tmp/loadgen-obs ./cmd/loadgen

echo "obs_smoke: starting 2-node fleet on $FLEET_ADDR (trace + slo on)"
# -slo-latency sizes the latency objective to this rig: 250-contract
# batches cost ~300ms of modelled device time, which is the expected
# shape here, not an SLO violation.
/tmp/pricefleet-obs -addr "$FLEET_ADDR" -nodes 2 -steps "$STEPS" \
    -heartbeat 50ms -slo-latency 2s -log-level warn >"$FLEET_LOG" 2>&1 &
FLEET_PID=$!
for i in $(seq 1 50); do
    if curl -sf "$FLEET/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 50 ] && fail "fleet did not become healthy"
    sleep 0.2
done

echo "obs_smoke: loadgen through the router with the SLO verdict armed"
if ! /tmp/loadgen-obs -via-router "$FLEET" -n 400 -warmup 0 -passes 3 \
    -target 0 -slo >"$LG_OUT" 2>&1; then
    cat "$LG_OUT" >&2
    fail "loadgen -slo verdict failed on a clean run"
fi
cat "$LG_OUT"
grep -q "ledger:" "$LG_OUT" \
    || fail "loadgen report has no Server-Timing joules ledger line"
grep -q "slo verdict: pass" "$LG_OUT" \
    || fail "loadgen did not print a passing slo verdict"

echo "obs_smoke: validating the merged fleet trace"
# The trace aggregator pulls node rings on each /debug/trace render;
# node request spans land a hair after responses, so allow a few polls.
for i in $(seq 1 25); do
    curl -sf "$FLEET/debug/trace" -o "$TRACE" || fail "GET /debug/trace"
    if python3 - "$TRACE" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
procs, spans = {}, []
for ev in doc.get("traceEvents", []):
    if ev.get("ph") == "M" and ev.get("name") == "process_name":
        procs[ev["pid"]] = ev["args"]["name"]
    elif ev.get("ph") == "X":
        spans.append(ev)
lanes = set(procs.values())
need = {"router", "node-0:host", "node-1:host"}
if not need <= lanes:
    sys.exit(1)
# One request's trace ID must stitch spans on the router AND both nodes.
by_lane = {}
for ev in spans:
    tid = ev.get("args", {}).get("trace_id")
    if tid:
        by_lane.setdefault(procs.get(ev["pid"], "?"), set()).add(tid)
shared = (by_lane.get("router", set())
          & by_lane.get("node-0:host", set())
          & by_lane.get("node-1:host", set()))
if not shared:
    sys.exit(1)
print(f"obs_smoke: {len(shared)} trace IDs span router and both nodes "
      f"({len(spans)} spans, lanes: {sorted(lanes)})")
EOF
    then
        MERGED_OK=1
        break
    fi
    MERGED_OK=0
    sleep 0.2
done
[ "${MERGED_OK:-0}" = 1 ] || fail "merged trace never stitched router + both nodes under one trace ID"

echo "obs_smoke: validating exemplars on a node's /metrics"
NODE0=$(curl -sf "$FLEET/fleet/nodes" | python3 -c \
    'import json,sys; print(json.load(sys.stdin)[0]["base_url"])') \
    || fail "GET /fleet/nodes"
curl -sf "$NODE0/metrics" -o "$TRACE" || fail "GET node-0 /metrics"
grep -q 'binopt_request_joules_bucket' "$TRACE" \
    || fail "node metrics missing the per-request joules histogram"
grep -q '# {trace_id="' "$TRACE" \
    || fail "node histograms carry no trace-ID exemplars"

echo "obs_smoke: validating the router SLO endpoint"
curl -sf "$FLEET/debug/slo" | grep -q '"healthy":true' \
    || fail "/debug/slo not healthy after a clean run"
curl -sf "$FLEET/healthz" | grep -q '"now_unix_nano"' \
    || fail "/healthz has no now_unix_nano (clock-offset contract)"

kill "$FLEET_PID"
wait "$FLEET_PID" 2>/dev/null || true
FLEET_PID=
grep -q "drained cleanly" "$FLEET_LOG" || fail "fleet did not drain cleanly"

echo "obs_smoke: PASS"
