#!/usr/bin/env bash
# chaos_smoke.sh — boot pricesrvd with a 20% injected error rate on the
# GPU shard, drive the paper's chain through loadgen in chaos mode, and
# hold the fault-tolerance contract: zero client-visible errors, nonzero
# server-side retries, error counters metered, and the flaky shard's
# breaker observably open on /healthz and /metrics while the pool
# reports itself degraded (not down).
#
# Run from the repository root:  ./scripts/chaos_smoke.sh
set -euo pipefail

ADDR=127.0.0.1:18081
BASE=http://$ADDR
LOG=$(mktemp)
SRV_PID=

cleanup() {
    if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
        kill "$SRV_PID" 2>/dev/null || true
        wait "$SRV_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
}
trap cleanup EXIT

fail() {
    echo "chaos_smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$LOG" >&2
    exit 1
}

echo "chaos_smoke: building"
go build -o /tmp/pricesrvd-chaos ./cmd/pricesrvd
go build -o /tmp/loadgen-chaos ./cmd/loadgen

# A one-hour breaker cooldown keeps the tripped breaker open through
# the post-run assertions instead of probing half-open behind our back.
echo "chaos_smoke: starting pricesrvd on $ADDR with faults on gpu-ivb"
/tmp/pricesrvd-chaos -addr "$ADDR" -steps 256 \
    -faults 'gpu-ivb:err=0.2' -fault-seed 7 \
    -breaker-cooldown 1h >"$LOG" 2>&1 &
SRV_PID=$!

for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    [ "$i" = 50 ] && fail "server did not become healthy"
    sleep 0.2
done

grep -q "faults armed on gpu-ivb" "$LOG" || fail "injector not armed"

echo "chaos_smoke: driving load under faults"
# -chaos exits nonzero if any client saw an error: the core assertion.
/tmp/loadgen-chaos -addr "$BASE" -n 2000 -warmup 0 -passes 1 -target 0 -chaos \
    || fail "loadgen chaos verdict: client-visible errors"

HEALTH=$(mktemp)
METRICS=$(mktemp)
trap 'cleanup; rm -f "$HEALTH" "$METRICS"' EXIT
curl -sf "$BASE/healthz" -o "$HEALTH" || fail "GET /healthz"
curl -sf "$BASE/metrics" -o "$METRICS" || fail "GET /metrics"

echo "chaos_smoke: validating the outage is observable"
grep -q '"status":"degraded"' "$HEALTH" || fail "healthz not degraded: $(cat "$HEALTH")"
python3 - "$HEALTH" <<'EOF' || fail "healthz breaker assertions"
import json, sys
h = json.load(open(sys.argv[1]))
be = {b["name"]: b for b in h["backends"]}
gpu = be["gpu-ivb"]
assert gpu["breaker"] == "open", f"gpu-ivb breaker {gpu['breaker']!r}, want open"
assert gpu.get("price_errors", 0) > 0, "gpu-ivb has no metered errors"
for name, b in be.items():
    if name != "gpu-ivb":
        assert b["breaker"] == "closed", f"{name} breaker {b['breaker']!r}, want closed"
EOF

grep -q 'binopt_breaker_state{backend="gpu-ivb"} 1' "$METRICS" \
    || fail "metrics: gpu-ivb breaker not open"
retries=$(awk '$1 == "binopt_retries_total" {print $2}' "$METRICS")
errors=$(awk '$1 == "binopt_price_errors_total" {print $2}' "$METRICS")
[ -n "$retries" ] && [ "$retries" -gt 0 ] || fail "binopt_retries_total = ${retries:-missing}, want > 0"
[ -n "$errors" ] && [ "$errors" -gt 0 ] || fail "binopt_price_errors_total = ${errors:-missing}, want > 0"
grep -q 'binopt_backend_price_errors_total{backend="gpu-ivb"}' "$METRICS" \
    || fail "metrics: per-backend error counter missing"

echo "chaos_smoke: $errors injected failures absorbed with $retries retries"

kill "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
grep -q "drained cleanly" "$LOG" || fail "server did not drain cleanly"

echo "chaos_smoke: PASS"
