#!/usr/bin/env bash
# Local mirror of CI's static gates: build binoptvet, run it over the
# whole module via `go vet -vettool` (so clean packages come out of the
# build cache), and hold the formatting / module-hygiene lines.
#
# Usage: scripts/lint.sh [packages...]    (default ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./...)
fi

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needs to run on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "== go mod tidy -diff"
go mod tidy -diff

echo "== go vet"
go vet "${pkgs[@]}"

echo "== binoptvet"
bin=$(mktemp -d)/binoptvet
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/binoptvet
go vet -vettool="$bin" "${pkgs[@]}"

echo "== binoptvet -time"
"$bin" -time "${pkgs[@]}"

echo "lint: clean"
