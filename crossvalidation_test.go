package binopt

import (
	"math"
	"testing"
)

// TestSolversAgreeAcrossContractMatrix cross-validates every solver on a
// grid of contracts: all rights, styles and moneyness bands. The lattice
// at N=2048 is the arbiter; deterministic solvers must agree within a
// cent or two, BAW within ~1.5%, Monte Carlo within statistical bounds.
func TestSolversAgreeAcrossContractMatrix(t *testing.T) {
	base := demoOption()
	var contracts []Option
	for _, right := range []Right{Call, Put} {
		for _, style := range []Style{European, American} {
			for _, strike := range []float64{85, 100, 115} {
				o := base
				o.Right = right
				o.Style = style
				o.Strike = strike
				contracts = append(contracts, o)
			}
		}
	}

	for _, o := range contracts {
		o := o
		ref, err := Price(o, 2048)
		if err != nil {
			t.Fatal(err)
		}
		scale := math.Max(ref, 1)

		if v, err := PriceFDM(o, FDMConfig{}); err != nil {
			t.Errorf("%s: fdm: %v", o, err)
		} else if math.Abs(v-ref) > 0.02*scale {
			t.Errorf("%s: fdm %v vs lattice %v", o, v, ref)
		}

		if v, err := PriceQUAD(o, QUADConfig{}); err != nil {
			t.Errorf("%s: quad: %v", o, err)
		} else if math.Abs(v-ref) > 0.03*scale {
			t.Errorf("%s: quad %v vs lattice %v", o, v, ref)
		}

		if v, err := PriceTrinomial(o, 1024); err != nil {
			t.Errorf("%s: trinomial: %v", o, err)
		} else if math.Abs(v-ref) > 0.01*scale {
			t.Errorf("%s: trinomial %v vs lattice %v", o, v, ref)
		}

		if v, err := PriceBAW(o); err != nil {
			t.Errorf("%s: baw: %v", o, err)
		} else if math.Abs(v-ref) > 0.02*scale {
			t.Errorf("%s: baw %v vs lattice %v", o, v, ref)
		}

		if res, err := PriceMC(o, MCConfig{Paths: 30000, Seed: 77, Antithetic: true}); err != nil {
			t.Errorf("%s: mc: %v", o, err)
		} else if math.Abs(res.Price-ref) > 5*res.StdErr+0.05*scale {
			t.Errorf("%s: mc %v ± %v vs lattice %v", o, res.Price, res.StdErr, ref)
		}
	}
}

// TestSensitivitiesAgreeAcrossSolvers: the generic finite-difference
// Greeks over the FDM solver must match the lattice's native Greeks.
func TestSensitivitiesAgreeAcrossSolvers(t *testing.T) {
	o := demoOption()
	_, native, err := PriceWithGreeks(o, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fdmGreeks, err := Sensitivities(func(oo Option) (float64, error) {
		return PriceFDM(oo, FDMConfig{SpaceNodes: 300, TimeSteps: 300})
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"delta", fdmGreeks.Delta, native.Delta, 0.02},
		{"gamma", fdmGreeks.Gamma, native.Gamma, 0.01},
		{"vega", fdmGreeks.Vega, native.Vega, 0.6},
		{"rho", fdmGreeks.Rho, native.Rho, 0.6},
		{"theta", fdmGreeks.Theta, native.Theta, 0.2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s: fdm %v vs lattice %v", c.name, c.got, c.want)
		}
	}
}

func TestSensitivitiesValidate(t *testing.T) {
	bad := demoOption()
	bad.Sigma = -1
	if _, err := Sensitivities(func(o Option) (float64, error) { return Price(o, 64) }, bad); err == nil {
		t.Error("invalid option should fail")
	}
}
