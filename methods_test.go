package binopt

import (
	"strings"
	"testing"
)

func TestMethodComparison(t *testing.T) {
	results, text, err := MethodComparison(MethodComparisonConfig{
		MCPaths:  20000,
		RefSteps: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d methods", len(results))
	}
	byName := map[string]MethodResult{}
	for _, r := range results {
		byName[r.Method] = r
		if r.Seconds <= 0 {
			t.Errorf("%s: no wall time recorded", r.Method)
		}
		if r.Price <= 0 {
			t.Errorf("%s: price %v", r.Method, r.Price)
		}
	}
	// Deterministic grid methods must be within a cent or two of the
	// reference; the BAW quadratic approximation within ~1%.
	for _, name := range []string{"binomial", "binomial+richardson", "binomial BBS",
		"trinomial", "crank-nicolson PSOR", "QUAD"} {
		if byName[name].AbsError > 0.02 {
			t.Errorf("%s error %g too large", name, byName[name].AbsError)
		}
	}
	if byName["barone-adesi whaley"].AbsError > 0.1 {
		t.Errorf("BAW error %g too large", byName["barone-adesi whaley"].AbsError)
	}
	// The §II argument: Monte Carlo trails the deterministic solvers in
	// accuracy at these budgets.
	mc := byName["monte carlo LSM"]
	if mc.AbsError < byName["binomial+richardson"].AbsError {
		t.Logf("note: MC happened to beat richardson this seed (%g vs %g)",
			mc.AbsError, byName["binomial+richardson"].AbsError)
	}
	if mc.AbsError > 0.15 {
		t.Errorf("LSM error %g implausibly large", mc.AbsError)
	}
	if !strings.Contains(text, "Solver comparison") || !strings.Contains(text, "QUAD") {
		t.Errorf("text:\n%s", text)
	}
}

func TestMethodComparisonEuropean(t *testing.T) {
	o := demoOption()
	o.Style = European
	results, _, err := MethodComparison(MethodComparisonConfig{
		Contract: &o,
		MCPaths:  20000,
		RefSteps: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.AbsError > 0.2 {
			t.Errorf("%s european error %g", r.Method, r.AbsError)
		}
	}
}
